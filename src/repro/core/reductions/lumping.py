"""Optimal state-space lumping by vectorized partition refinement.

Computes the *coarsest* strongly-lumpable partition of a DTMC that
respects its labels and rewards — the algorithm of Derisavi, Hermanns &
Sanders ("Optimal state-space lumping in Markov chains", IPL 2003),
which the paper cites as reference [17] to justify its reductions.

The refinement loop:

1. start from the partition induced by the (label, reward) signature of
   each state;
2. compute each state's probability mass into the blocks of the current
   partition and split every block whose members disagree;
3. stop when no block refines anything.

The result is the unique coarsest probabilistic bisimulation (Larsen &
Skou) respecting the labeling; quotienting by it is always sound.
Probabilities are compared after rounding to ``decimals`` digits,
making the refinement robust to floating-point noise.

Everything here is sparse-matrix algebra, not per-state Python: a
refinement step is one sparse product ``P @ B`` (``B`` the CSR
block-indicator matrix of the current partition) whose rows, rounded to
``decimals``, *are* the state signatures; states are then regrouped by
``(old block, signature row)`` with an ``np.unique`` over per-row
fingerprints.  Two refinement strategies share that kernel:

``strategy="rounds"``
    Every round recomputes signatures against *all* current blocks —
    the straightforward global fixpoint; ``O(nnz)`` work per round.
``strategy="splitters"`` (default)
    Derisavi-style splitter queue: signatures are recomputed only into
    *recently split* blocks, so late rounds touch a shrinking column
    subset of ``P`` — the classic worklist refinement, batched.

Both strategies reach the same (unique) coarsest partition and return
identical, canonically-numbered ``block_of`` arrays.

Signature rows are grouped by 128-bit content fingerprints (two
independent 64-bit mixes over the CSR ``(column, value)`` entries plus
the row's nnz).  A fingerprint collision — probability ``~ n^2 / 2^128``
— could merge two distinguishable states; the strong-lumpability
verification in :func:`~repro.core.reductions.abstraction.quotient_by_partition`
(kept on by :func:`lump`) would reject such a partition loudly.

The pre-vectorization pure-Python implementation is retained as
:func:`_coarsest_lumping_reference` for golden-parity tests and as the
measured baseline of ``benchmarks/test_bench_reduce.py``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ...dtmc.chain import DTMC
from .abstraction import QuotientResult, quotient_by_partition

__all__ = [
    "RefinementStats",
    "STRATEGIES",
    "initial_partition",
    "coarsest_lumping",
    "coarsest_lumping_with_stats",
    "lump",
]

#: Refinement strategies accepted by :func:`coarsest_lumping`.
STRATEGIES = ("rounds", "splitters")


@dataclass(frozen=True)
class RefinementStats:
    """Provenance of one partition-refinement run.

    ``rounds`` counts refinement iterations (signature passes);
    ``splitters`` counts the splitter blocks processed across all
    iterations (in ``"rounds"`` mode: every block, every round).
    """

    strategy: str
    rounds: int
    splitters: int
    initial_blocks: int
    final_blocks: int


# ----------------------------------------------------------------------
# Vectorized kernel: renumbering, signature rounding, row grouping
# ----------------------------------------------------------------------

def _group_by_keys(keys: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Group equal key tuples into canonical first-seen-numbered ids.

    ``keys`` lists the key components, most significant first.  Returns
    ``(group_of, representatives)`` where ``group_of[i]`` is the group
    id of element ``i`` (contiguous ``0..G-1``, numbered by first
    occurrence) and ``representatives[g]`` is the lowest element index
    in group ``g``.  One lexsort plus boundary scans — ``O(n log n)``
    with no per-element Python and no void-dtype copies.
    """
    n = keys[0].size
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    order = np.lexsort(tuple(reversed(keys)))
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for key in keys:
        key_sorted = key[order]
        boundary[1:] |= key_sorted[1:] != key_sorted[:-1]
    gid_sorted = np.cumsum(boundary) - 1
    num_groups = int(gid_sorted[-1]) + 1
    starts = np.flatnonzero(boundary)
    first_occurrence = np.minimum.reduceat(order, starts)
    rank = np.empty(num_groups, dtype=np.int64)
    rank[np.argsort(first_occurrence, kind="stable")] = np.arange(num_groups)
    group_of = np.empty(n, dtype=np.int64)
    group_of[order] = rank[gid_sorted]
    representatives = np.empty(num_groups, dtype=np.int64)
    representatives[rank] = first_occurrence
    return group_of, representatives


def _round_signature(sig: sparse.spmatrix, decimals: int) -> sparse.csr_matrix:
    """Canonicalize a signature matrix: CSR, sorted, rounded, no zeros.

    Adding ``0.0`` after rounding normalizes ``-0.0`` so equal values
    always share a bit pattern, and entries that round to zero are
    dropped entirely — "no measurable mass into that block".
    """
    sig = sig.tocsr()
    sig.sum_duplicates()
    sig.sort_indices()
    sig.data = np.round(sig.data, decimals) + 0.0
    sig.eliminate_zeros()
    return sig


_HASH_SALTS = (np.uint64(0x9E3779B97F4A7C15), np.uint64(0xC2B2AE3D27D4EB4F))
_HASH_MULT1 = np.uint64(0xFF51AFD7ED558CCD)
_HASH_MULT2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT33 = np.uint64(33)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64-style avalanche over a uint64 array (mod 2^64)."""
    x = x ^ (x >> _SHIFT33)
    x = x * _HASH_MULT1
    x = x ^ (x >> _SHIFT33)
    x = x * _HASH_MULT2
    return x ^ (x >> _SHIFT33)


def _row_fingerprints(sig: sparse.csr_matrix) -> List[np.ndarray]:
    """Two independent 64-bit content fingerprints per CSR row.

    Each entry ``(column, value)`` is mixed into a uint64 and the row
    fingerprint is the segment sum (mod 2^64, via cumsum differences —
    ``O(nnz)``, no per-row Python).
    """
    indptr = sig.indptr
    bits = np.ascontiguousarray(sig.data, dtype=np.float64).view(np.uint64)
    cols = sig.indices.astype(np.uint64)
    fingerprints = []
    for salt in _HASH_SALTS:
        entry = _mix64(bits ^ _mix64(cols + salt))
        cumulative = np.zeros(entry.size + 1, dtype=np.uint64)
        np.cumsum(entry, out=cumulative[1:])
        fingerprints.append(
            (cumulative[indptr[1:]] - cumulative[indptr[:-1]]).view(np.int64)
        )
    return fingerprints


def _split_by_signature(
    block_of: np.ndarray, sig: sparse.csr_matrix
) -> Tuple[np.ndarray, np.ndarray]:
    """Split each block by its members' signature rows.

    Returns ``(new_block_of, parent_of)``: canonically-renumbered new
    block ids keyed on ``(old block, signature row)``, plus each new
    block's parent in the old partition.
    """
    if block_of.size == 0:
        return block_of, block_of
    h1, h2 = _row_fingerprints(sig)
    nnz = np.diff(sig.indptr).astype(np.int64)
    new_block_of, representatives = _group_by_keys([block_of, nnz, h1, h2])
    return new_block_of, block_of[representatives]


def _indicator(block_of: np.ndarray, num_blocks: int) -> sparse.csr_matrix:
    n = block_of.shape[0]
    return sparse.csr_matrix(
        (np.ones(n), (np.arange(n), block_of)), shape=(n, num_blocks)
    )


# ----------------------------------------------------------------------
# Initial partition
# ----------------------------------------------------------------------

def initial_partition(
    chain: DTMC, respect: Optional[Sequence[str]] = None, decimals: int = 10
) -> np.ndarray:
    """Partition states by their (label, reward) signature.

    ``respect`` restricts which labels/rewards matter (default: all of
    them); properties over other labels are *not* preserved by the
    resulting lumping.  Duplicate names in ``respect`` are rejected, and
    unknown names raise a :class:`KeyError` listing what the chain
    actually carries.
    """
    n = chain.num_states
    names = list(respect) if respect is not None else (
        sorted(chain.labels) + sorted(chain.rewards)
    )
    if respect is not None:
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate names in respect: {duplicates};"
                f" each label/reward may be listed at most once"
            )
    columns: List[np.ndarray] = []
    for name in names:
        if name in chain.labels:
            columns.append(chain.labels[name].astype(np.float64))
        elif name in chain.rewards:
            columns.append(np.round(chain.rewards[name], decimals) + 0.0)
        else:
            raise KeyError(
                f"{name!r} is neither a label nor a reward of this chain;"
                f" available labels: {sorted(chain.labels)},"
                f" rewards: {sorted(chain.rewards)}"
            )
    if n == 0 or not columns:
        return np.zeros(n, dtype=np.int64)
    return _group_by_keys(columns)[0]


# ----------------------------------------------------------------------
# Refinement strategies
# ----------------------------------------------------------------------

def _refine_rounds(
    matrix: sparse.csr_matrix,
    block_of: np.ndarray,
    decimals: int,
    max_rounds: Optional[int],
) -> Tuple[np.ndarray, int, int]:
    """Global fixpoint: signatures against *all* blocks, every round."""
    rounds = 0
    splitters = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError("partition refinement exceeded max_rounds")
        num_blocks = int(block_of.max()) + 1
        splitters += num_blocks
        sig = _round_signature(matrix @ _indicator(block_of, num_blocks), decimals)
        new_block_of, _ = _split_by_signature(block_of, sig)
        if int(new_block_of.max()) + 1 == num_blocks:
            return block_of, rounds, splitters
        block_of = new_block_of


def _refine_splitters(
    matrix: sparse.csr_matrix,
    block_of: np.ndarray,
    decimals: int,
    max_rounds: Optional[int],
) -> Tuple[np.ndarray, int, int]:
    """Derisavi-style worklist: signatures only into recently split blocks.

    All blocks start dirty.  Each iteration batch-processes the whole
    dirty set ``C``: signatures are the columns of ``P`` restricted to
    the member states of ``C`` (a CSC column slice), aggregated per
    splitter block, and blocks are split on ``(old block, signature)``.
    Children of any block that split become dirty; unsplit blocks are
    stable with respect to every clean block, so the loop ends exactly
    when the partition is strongly lumpable.
    """
    csc: Optional[sparse.csc_matrix] = None
    num_blocks = int(block_of.max()) + 1
    dirty = np.ones(num_blocks, dtype=bool)
    rounds = 0
    splitters = 0
    while dirty.any():
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError("partition refinement exceeded max_rounds")
        splitter_ids = np.flatnonzero(dirty)
        splitters += splitter_ids.size
        if splitter_ids.size == num_blocks:
            # Everything is dirty (always the first round): the column
            # restriction is the identity, so use the cheaper full product.
            sig = matrix @ _indicator(block_of, num_blocks)
        else:
            if csc is None:
                csc = matrix.tocsc()
            members = np.flatnonzero(dirty[block_of])
            compact = np.full(num_blocks, -1, dtype=np.int64)
            compact[splitter_ids] = np.arange(splitter_ids.size)
            sub_indicator = sparse.csr_matrix(
                (
                    np.ones(members.size),
                    (np.arange(members.size), compact[block_of[members]]),
                ),
                shape=(members.size, splitter_ids.size),
            )
            sig = csc[:, members] @ sub_indicator
        new_block_of, parent_of = _split_by_signature(
            block_of, _round_signature(sig, decimals)
        )
        new_num_blocks = int(new_block_of.max()) + 1
        if new_num_blocks == num_blocks:
            dirty = np.zeros(num_blocks, dtype=bool)
            continue
        # A new block is dirty iff its parent split into several pieces.
        split_parent = np.bincount(parent_of, minlength=num_blocks) > 1
        dirty = split_parent[parent_of]
        block_of = new_block_of
        num_blocks = new_num_blocks
    return block_of, rounds, splitters


def coarsest_lumping_with_stats(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    max_rounds: Optional[int] = None,
    strategy: str = "splitters",
) -> Tuple[np.ndarray, RefinementStats]:
    """Coarsest lumping plus :class:`RefinementStats` provenance."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown refinement strategy {strategy!r};"
            f" choose from {', '.join(STRATEGIES)}"
        )
    block_of = initial_partition(chain, respect, decimals)
    if chain.num_states == 0:
        return block_of, RefinementStats(strategy, 0, 0, 0, 0)
    initial_blocks = int(block_of.max()) + 1
    refine = _refine_rounds if strategy == "rounds" else _refine_splitters
    block_of, rounds, splitters = refine(
        chain.transition_matrix, block_of, decimals, max_rounds
    )
    return block_of, RefinementStats(
        strategy=strategy,
        rounds=rounds,
        splitters=splitters,
        initial_blocks=initial_blocks,
        final_blocks=int(block_of.max()) + 1,
    )


def coarsest_lumping(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    max_rounds: Optional[int] = None,
    strategy: str = "splitters",
) -> np.ndarray:
    """Coarsest strongly-lumpable partition respecting labels/rewards.

    Returns ``block_of`` suitable for
    :func:`~repro.core.reductions.abstraction.quotient_by_partition`.
    ``strategy`` picks the refinement schedule (see the module docs);
    both strategies return the same canonical partition.
    """
    block_of, _ = coarsest_lumping_with_stats(
        chain, respect=respect, decimals=decimals,
        max_rounds=max_rounds, strategy=strategy,
    )
    return block_of


def lump(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    strategy: str = "splitters",
) -> QuotientResult:
    """Lump ``chain`` to its smallest equivalent quotient.

    One-call convenience: computes the coarsest lumping and quotients
    by it (verification is cheap and kept on as a safety net).  The
    returned :class:`~repro.core.reductions.abstraction.QuotientResult`
    carries the refinement provenance on ``.refinement``.
    """
    block_of, stats = coarsest_lumping_with_stats(
        chain, respect=respect, decimals=decimals, strategy=strategy
    )
    atol = 10.0 ** (-decimals) * 10
    result = quotient_by_partition(chain, block_of, atol=atol, respect=respect)
    result.refinement = stats
    return result


# ----------------------------------------------------------------------
# Pure-Python reference (golden baseline)
# ----------------------------------------------------------------------

def _coarsest_lumping_reference(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    max_rounds: Optional[int] = None,
) -> np.ndarray:
    """Per-state pure-Python refinement, kept as the golden reference.

    Semantically identical to :func:`coarsest_lumping` (same rounding,
    same dropped-zero convention, same canonical numbering) but built
    from per-state dicts — the pre-vectorization implementation.  Used
    by the parity tests and measured as the baseline in
    ``benchmarks/test_bench_reduce.py``; not part of the public API.
    """
    n = chain.num_states
    signatures: List[Tuple[Hashable, ...]] = [() for _ in range(n)]
    names = respect if respect is not None else (
        sorted(chain.labels) + sorted(chain.rewards)
    )
    for name in names:
        if name in chain.labels:
            vec = chain.labels[name]
            signatures = [
                sig + (bool(vec[i]),) for i, sig in enumerate(signatures)
            ]
        elif name in chain.rewards:
            vec = np.round(chain.rewards[name], decimals)
            signatures = [
                sig + (float(vec[i]),) for i, sig in enumerate(signatures)
            ]
        else:
            raise KeyError(f"{name!r} is neither a label nor a reward")
    block_ids: Dict[Tuple[Hashable, ...], int] = {}
    block_of = np.empty(n, dtype=np.int64)
    for i, sig in enumerate(signatures):
        block_of[i] = block_ids.setdefault(sig, len(block_ids))

    matrix = chain.transition_matrix
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError("partition refinement exceeded max_rounds")
        num_blocks = int(block_of.max()) + 1 if n else 0
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        row_signatures: List[Tuple] = []
        for s in range(n):
            row: Dict[int, float] = defaultdict(float)
            for k in range(indptr[s], indptr[s + 1]):
                row[int(block_of[indices[k]])] += float(data[k])
            row_signatures.append(
                tuple(sorted(
                    (b, rounded)
                    for b, p in row.items()
                    if (rounded := round(p, decimals)) != 0.0
                ))
            )
        new_ids: Dict[Tuple[int, Tuple], int] = {}
        new_block_of = np.empty(n, dtype=np.int64)
        for s in range(n):
            key = (int(block_of[s]), row_signatures[s])
            new_block_of[s] = new_ids.setdefault(key, len(new_ids))
        if len(new_ids) == num_blocks:
            return block_of
        block_of = new_block_of
