"""Trend analytics: a family's guarantee trajectories across versions.

:func:`trend_report` scans one :class:`~repro.store.ResultStore` and
folds every banked row of one zoo family into per-guarantee
:class:`TrendSeries` — one series per logical ``(scenario, formula,
backend, config)`` identity, its points ordered by insertion across
salts.  The :class:`TrendReport` on top answers the fleet-operator
questions directly: the maximum drift anywhere in the grid, which
series regressed beyond tolerance, which carry
:class:`~repro.resilience.ValidationWarning` flags, and per-axis
summaries (which swept parameter values drift worst).

Everything here is pure, stdlib-only computation over store rows; the
HTML rendering lives in :mod:`repro.history.render` and the CLI/HTTP
surfaces in :mod:`repro.zoo.cli` / :mod:`repro.service.frontend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..store.history import DRIFT_TOLERANCE, HistoryPoint, relative_drift
from ..store.result_store import ResultStore, StoredResult, canonical

__all__ = [
    "AxisSummary",
    "TrendSeries",
    "TrendReport",
    "scenario_params",
    "trend_report",
    "trend_reports",
]


def scenario_params(scenario: Any) -> Dict[str, Any]:
    """The parameter dict inside a zoo-shaped scenario identity.

    ``zoo.sweep`` banks scenario identities as
    ``["zoo", [family, [[key, value], ...]], ["reduce", flag]]``
    (JSON-decoded, so tuples arrive as lists).  Anything else — custom
    ``store_key`` callables, plain-dict identities — degrades to the
    dict itself when it is one, else to ``{}``.
    """
    if isinstance(scenario, dict):
        return dict(scenario)
    try:
        tag, spec = scenario[0], scenario[1]
        if tag == "zoo":
            return {str(k): v for k, v in spec[1]}
    except (TypeError, IndexError, KeyError, ValueError):
        pass
    return {}


@dataclass
class TrendSeries:
    """One logical guarantee's trajectory across salts.

    ``points`` are in insertion (version) order; ``params`` is the
    scenario's parameter dict when the identity is zoo-shaped.  The
    verdict honours validation flags: a series whose banked values
    carry :class:`~repro.resilience.ValidationWarning` records is
    ``"flagged"`` regardless of drift, a numeric change beyond the
    tolerance anywhere along the trajectory is ``"drift"``, everything
    else is ``"stable"`` (including single-version series, which have
    nothing to drift against yet).
    """

    family: Optional[str]
    scenario: Any
    formula: str
    backend: str
    config: Any
    points: List[HistoryPoint] = field(default_factory=list)
    tolerance: float = DRIFT_TOLERANCE

    @property
    def params(self) -> Dict[str, Any]:
        """Scenario parameters (``{}`` for non-zoo identities)."""
        return scenario_params(self.scenario)

    @property
    def metrics(self) -> List[Optional[float]]:
        """The trendable scalar of every point, in version order."""
        return [p.metric for p in self.points]

    @property
    def drift(self) -> float:
        """Largest relative step between consecutive versions."""
        steps = [
            relative_drift(a, b)
            for a, b in zip(self.metrics, self.metrics[1:])
        ]
        return max((s for s in steps if s is not None), default=0.0)

    @property
    def flagged(self) -> bool:
        """True when any banked point carried validation warnings."""
        return any(p.flagged for p in self.points)

    @property
    def verdict(self) -> str:
        """``"flagged"`` / ``"drift"`` / ``"stable"`` (see class docs)."""
        if self.flagged:
            return "flagged"
        if self.drift > self.tolerance:
            return "drift"
        return "stable"

    @property
    def latest(self) -> Optional[HistoryPoint]:
        """The newest banked point (``None`` on an empty series)."""
        return self.points[-1] if self.points else None

    def label(self) -> str:
        """Compact identity: sorted params + backend."""
        params = self.params
        inner = " ".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{inner or canonical(self.scenario)} [{self.backend}]"


@dataclass
class AxisSummary:
    """Drift of one swept parameter, value by value.

    ``worst_value`` is the axis value whose series drift the most —
    the first place to look when a version moved a family's grid.
    """

    name: str
    values: List[Any]
    max_drift_by_value: Dict[Any, float]

    @property
    def worst_value(self) -> Any:
        """The axis value with the largest drift (``None`` when flat)."""
        if not self.max_drift_by_value:
            return None
        return max(self.max_drift_by_value, key=self.max_drift_by_value.get)

    @property
    def max_drift(self) -> float:
        """The largest drift anywhere along this axis."""
        return max(self.max_drift_by_value.values(), default=0.0)

    def describe(self) -> str:
        """One human line: axis name, value count, worst value."""
        worst = self.worst_value
        return (
            f"axis {self.name}: {len(self.values)} values,"
            f" max drift {self.max_drift:.3%}"
            + (f" at {self.name}={worst}" if worst is not None else "")
        )


@dataclass
class TrendReport:
    """Every guarantee trajectory of one family, with verdicts.

    Built by :func:`trend_report`; rendered by
    :func:`repro.history.render.render_dashboard` and printed by
    ``repro-zoo history show``.
    """

    family: str
    tolerance: float
    series: List[TrendSeries] = field(default_factory=list)

    @property
    def salts(self) -> List[str]:
        """Every salt seen across the series, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.series:
            for p in s.points:
                seen.setdefault(p.salt, None)
        return list(seen)

    @property
    def max_drift(self) -> float:
        """The single largest relative drift anywhere in the grid."""
        return max((s.drift for s in self.series), default=0.0)

    @property
    def drifted(self) -> List[TrendSeries]:
        """Series whose drift exceeds the tolerance."""
        return [s for s in self.series if s.drift > self.tolerance]

    @property
    def flagged(self) -> List[TrendSeries]:
        """Series carrying validation warnings anywhere in history."""
        return [s for s in self.series if s.flagged]

    @property
    def verdict(self) -> str:
        """Family-level regression verdict (worst series verdict)."""
        if self.flagged:
            return "flagged"
        if self.drifted:
            return "drift"
        return "stable"

    def axis_summaries(self) -> List[AxisSummary]:
        """Per-axis drift summaries over the swept parameter grid.

        An *axis* is any scenario parameter that takes more than one
        value across the family's series; each value's figure is the
        max drift among the series pinned at that value.
        """
        values_by_name: Dict[str, Dict[str, Any]] = {}
        drift_by_pair: Dict[Tuple[str, str], float] = {}
        for series in self.series:
            for name, value in series.params.items():
                text = repr(value)
                values_by_name.setdefault(name, {})[text] = value
                pair = (name, text)
                drift_by_pair[pair] = max(
                    drift_by_pair.get(pair, 0.0), series.drift
                )
        summaries = []
        for name, values in sorted(values_by_name.items()):
            if len(values) < 2:
                continue  # fixed plane, not an axis
            summaries.append(
                AxisSummary(
                    name=name,
                    values=list(values.values()),
                    max_drift_by_value={
                        value: drift_by_pair[(name, text)]
                        for text, value in values.items()
                    },
                )
            )
        return summaries

    def describe(self) -> str:
        """Multi-line report: header, axis summaries, per-series rows."""
        lines = [
            f"{self.family}: {len(self.series)} tracked guarantee(s)"
            f" across {len(self.salts)} version(s),"
            f" max drift {self.max_drift:.3%}"
            f" (tolerance {self.tolerance:g}) -> {self.verdict}"
        ]
        lines.extend(a.describe() for a in self.axis_summaries())
        for series in self.series:
            metrics = [m for m in series.metrics if m is not None]
            path = " -> ".join(f"{m:.6g}" for m in metrics) or "non-numeric"
            lines.append(
                f"  {series.label()}: {path}"
                f"  ({len(series.points)} version(s),"
                f" drift {series.drift:.3%}, {series.verdict})"
            )
        return "\n".join(lines)


def _point_of(row: StoredResult) -> HistoryPoint:
    """One history point from a stored row (provenance preserved)."""
    return HistoryPoint(
        salt=row.salt,
        value=row.value,
        seconds=row.seconds,
        samples=row.samples,
        created=row.created,
        config=row.config,
        key=row.key,
        warnings=tuple(getattr(row.value, "warnings", ()) or ()),
    )


def trend_report(
    store: ResultStore,
    family: str,
    *,
    formula: Optional[str] = None,
    backend: Optional[str] = None,
    tolerance: float = DRIFT_TOLERANCE,
) -> TrendReport:
    """Fold one family's banked rows into a :class:`TrendReport`.

    Rows are grouped by logical identity — ``(scenario, formula,
    backend, config)`` — and each group becomes one
    :class:`TrendSeries` ordered by creation time (per identity,
    creation order *is* insertion order: an upsert keeps the original
    ``created`` stamp).  ``formula=`` / ``backend=`` narrow the scan.
    """
    rows = store.query(family=family, backend=backend, formula=formula)
    groups: Dict[Tuple, List[StoredResult]] = {}
    for row in rows:
        ident = (
            canonical(row.scenario), row.formula, row.backend,
            canonical(row.config),
        )
        groups.setdefault(ident, []).append(row)
    series = []
    for group in groups.values():
        group.sort(key=lambda r: (r.created, r.salt))
        first = group[0]
        series.append(
            TrendSeries(
                family=first.family,
                scenario=first.scenario,
                formula=first.formula,
                backend=first.backend,
                config=first.config,
                points=[_point_of(row) for row in group],
                tolerance=tolerance,
            )
        )
    series.sort(key=lambda s: (s.formula, s.backend, sorted(
        (k, repr(v)) for k, v in s.params.items()
    )))
    return TrendReport(family=family, tolerance=tolerance, series=series)


def trend_reports(
    store: ResultStore, *, tolerance: float = DRIFT_TOLERANCE
) -> List[TrendReport]:
    """One :func:`trend_report` per family present in the store.

    Families are taken from the store's aggregate stats; rows banked
    without a family (the ``'?'`` bucket) are skipped — they have no
    grid to chart.
    """
    stats = store.stats()
    return [
        trend_report(store, family, tolerance=tolerance)
        for family in sorted(stats.families)
        if family and family != "?"
    ]
