"""Self-contained HTML dashboard: guarantee trends as SVG sparklines.

Stdlib only, zero JavaScript: the page the service front-end returns
from ``GET /dashboard`` is one HTML string with inline CSS and inline
SVG — it renders anywhere (CI artifact viewers included) with no
external fetches.  Design choices follow the usual dashboard rules:
one hue for the single-series sparklines, status communicated by a
text label (never color alone), values set in ink colors rather than
the series color, a table beside every sparkline so the numbers are
readable without hover, and a dark mode driven by
``prefers-color-scheme`` CSS variables.
"""

from __future__ import annotations

import html
from typing import Any, Iterable, List, Mapping, Optional, Sequence

from .trend import TrendReport

__all__ = ["sparkline", "render_dashboard"]

#: Single accent hue for the sparkline stroke (identity is carried by
#: the row the sparkline sits in, so one hue serves every series).
_ACCENT = "#4269d0"

#: Status label -> dot color; the label text always rides along.
_STATUS = {"stable": "#2e7d43", "drift": "#b45309", "flagged": "#b91c1c"}


def sparkline(
    values: Sequence[Optional[float]],
    *,
    width: int = 140,
    height: int = 30,
    pad: float = 3.0,
) -> str:
    """Inline-SVG sparkline of one metric trajectory.

    ``None`` entries (non-numeric versions) are skipped.  Flat series
    draw a midline; single points draw a dot.  The newest point is
    emphasized with a filled marker, matching the "direct-label the
    latest value" convention of the surrounding table.
    """
    points = [
        (i, v) for i, v in enumerate(values) if v is not None
    ]
    if not points:
        return (
            f'<svg class="spark" width="{width}" height="{height}"'
            f' viewBox="0 0 {width} {height}" role="img"'
            f' aria-label="no numeric history"></svg>'
        )
    xs = [i for i, _ in points]
    ys = [v for _, v in points]
    lo, hi = min(ys), max(ys)
    span_x = max(max(xs) - min(xs), 1)
    span_y = (hi - lo) or 1.0

    def coord(i: int, v: float) -> str:
        """Map one (index, value) pair onto the padded viewBox."""
        x = pad + (i - min(xs)) * (width - 2 * pad) / span_x
        y = height - pad - (v - lo) * (height - 2 * pad) / span_y
        return f"{x:.1f},{y:.1f}"

    coords = [coord(i, v) for i, v in points]
    last = coords[-1].split(",")
    label = " to ".join(f"{v:.6g}" for v in (ys[0], ys[-1]))
    parts = [
        f'<svg class="spark" width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}" role="img"'
        f' aria-label="trend {html.escape(label)}">'
    ]
    if len(coords) > 1:
        parts.append(
            f'<polyline points="{" ".join(coords)}" fill="none"'
            f' stroke="{_ACCENT}" stroke-width="2"'
            f' stroke-linejoin="round" stroke-linecap="round"/>'
        )
    parts.append(
        f'<circle cx="{last[0]}" cy="{last[1]}" r="3" fill="{_ACCENT}"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _badge(verdict: str) -> str:
    """Status badge: colored dot + text label (never color alone)."""
    color = _STATUS.get(verdict, "#6b7280")
    return (
        f'<span class="badge"><span class="dot"'
        f' style="background:{color}"></span>{html.escape(verdict)}</span>'
    )


def _tile(label: str, value: Any) -> str:
    """One stat tile (label above, headline value below)."""
    return (
        f'<div class="tile"><div class="tile-label">{html.escape(label)}'
        f'</div><div class="tile-value">{html.escape(str(value))}</div></div>'
    )


def _metric_text(value: Optional[float]) -> str:
    return f"{value:.6g}" if value is not None else "—"


_CSS = """
:root {
  --bg: #ffffff; --surface: #f6f7f9; --ink: #1a1d23; --ink-2: #5a6070;
  --line: #e3e5ea; --accent: #4269d0;
}
@media (prefers-color-scheme: dark) {
  :root {
    --bg: #16181d; --surface: #1f222a; --ink: #e8eaf0; --ink-2: #9aa1b2;
    --line: #2e323c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--bg); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--line);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile-label { color: var(--ink-2); font-size: 12px; }
.tile-value { font-size: 20px; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--line);
  font-variant-numeric: tabular-nums; vertical-align: middle;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
td.num { text-align: right; }
.badge { display: inline-flex; align-items: center; gap: 6px; }
.dot { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
.spark { display: block; }
.axes { color: var(--ink-2); font-size: 13px; margin: 4px 0 10px; }
footer { color: var(--ink-2); font-size: 12px; margin-top: 28px; }
"""


def render_dashboard(
    reports: Iterable[TrendReport],
    *,
    stats: Optional[Mapping[str, Any]] = None,
    health: Optional[Mapping[str, Any]] = None,
    title: str = "repro guarantee dashboard",
) -> str:
    """The full ``GET /dashboard`` page as one HTML string.

    ``reports`` are per-family :class:`TrendReport` objects (typically
    :func:`repro.history.trend_reports` over the serving store);
    ``stats`` / ``health`` are the front-end's ``/stats`` and
    ``/healthz`` payloads, rendered as stat tiles so the page is a
    one-stop fleet snapshot.
    """
    reports = list(reports)
    out: List[str] = [
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        '<p class="sub">Store-backed guarantee trends across code'
        " versions (salts); values re-banked by each version of the"
        " code, charted in insertion order.</p>",
    ]
    tiles: List[str] = []
    if health is not None:
        tiles.append(_tile("service", health.get("status", "?")))
        tiles.append(
            _tile(
                "workers alive",
                f"{health.get('workers_alive', 0)}/{health.get('workers', 0)}",
            )
        )
    if stats is not None:
        store_stats = stats.get("store") or {}
        tiles.append(_tile("stored guarantees", store_stats.get("entries", 0)))
        tiles.append(
            _tile(
                "hits / misses",
                f"{stats.get('guarantee_hits', 0)} /"
                f" {stats.get('guarantee_misses', 0)}",
            )
        )
        tiles.append(_tile("uptime (s)", stats.get("uptime", 0)))
    tiles.append(_tile("families tracked", len(reports)))
    out.append(f'<div class="tiles">{"".join(tiles)}</div>')

    if not reports:
        out.append(
            "<p>No banked guarantees yet — run a sweep with"
            " <code>--store</code> against this service's store.</p>"
        )
    for report in reports:
        out.append(
            f"<h2>{html.escape(report.family)} {_badge(report.verdict)}</h2>"
        )
        out.append(
            f'<p class="sub">{len(report.series)} tracked guarantee(s)'
            f" across {len(report.salts)} version(s); max drift"
            f" {report.max_drift:.3%} (tolerance {report.tolerance:g}).</p>"
        )
        axes = report.axis_summaries()
        if axes:
            out.append(
                '<p class="axes">'
                + " · ".join(html.escape(a.describe()) for a in axes)
                + "</p>"
            )
        out.append(
            "<table><thead><tr><th>point</th><th>formula</th>"
            "<th>backend</th><th class=\"num\">versions</th>"
            "<th class=\"num\">first</th><th class=\"num\">latest</th>"
            "<th class=\"num\">drift</th><th>verdict</th><th>trend</th>"
            "</tr></thead><tbody>"
        )
        for series in report.series:
            metrics = series.metrics
            numeric = [m for m in metrics if m is not None]
            params = " ".join(
                f"{k}={v}" for k, v in sorted(series.params.items())
            ) or "&lt;defaults&gt;"
            out.append(
                "<tr>"
                f"<td>{params if params.startswith('&lt;') else html.escape(params)}</td>"
                f"<td>{html.escape(series.formula)}</td>"
                f"<td>{html.escape(series.backend)}</td>"
                f'<td class="num">{len(series.points)}</td>'
                f'<td class="num">{_metric_text(numeric[0] if numeric else None)}</td>'
                f'<td class="num">{_metric_text(numeric[-1] if numeric else None)}</td>'
                f'<td class="num">{series.drift:.3%}</td>'
                f"<td>{_badge(series.verdict)}</td>"
                f"<td>{sparkline(metrics)}</td>"
                "</tr>"
            )
        out.append("</tbody></table>")
    out.append(
        "<footer>Generated by <code>repro.history</code> — see"
        " <code>docs/http-api.md</code> for the JSON twin at"
        " <code>GET /history</code>.</footer>"
    )
    out.append("</body></html>")
    return "".join(out)
