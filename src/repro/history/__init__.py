"""Survey history: guarantee trends across code versions (salts).

The :class:`~repro.store.ResultStore` banks every checked guarantee
under the salt of the code version that produced it, so one store file
accumulates a *trajectory* per logical guarantee — the observability
the rate-reliability-complexity charting literature asks for, applied
to the repo itself: "how did this family's BER guarantee move across
versions?".

Three layers, bottom-up:

* :mod:`repro.store.history` / :meth:`ResultStore.history` — raw
  per-salt points and two-salt diffs (store layer);
* :mod:`repro.history.trend` — :class:`TrendReport` analytics over a
  family's sweep grid: per-series drift, regression verdicts honoring
  :class:`~repro.resilience.ValidationWarning` records, per-axis
  summaries;
* :mod:`repro.history.render` — the self-contained HTML dashboard
  (inline SVG sparklines, stdlib only) the service front-end serves
  at ``GET /dashboard``.

Surfaces: ``repro-zoo history list|show|diff`` on the CLI and
``GET /history`` / ``GET /dashboard`` on the HTTP front-end.
"""

from .render import render_dashboard, sparkline
from .trend import (
    AxisSummary,
    TrendReport,
    TrendSeries,
    scenario_params,
    trend_report,
    trend_reports,
)

__all__ = [
    "AxisSummary",
    "TrendReport",
    "TrendSeries",
    "render_dashboard",
    "scenario_params",
    "sparkline",
    "trend_report",
    "trend_reports",
]
