"""Unified solver-engine layer.

Everything numerical in the library — pCTL until/reward solves, steady
state, long-run structure — routes through one :class:`Engine` whose
backend is chosen by a :class:`SolverConfig` (direct, LU-cached,
power, Jacobi, or Gauss-Seidel).  The engine owns per-chain caches
(LU factorizations, Prob0/Prob1 precomputations, BSCC decompositions,
stationary distributions), so a batch of properties against one chain
pays for its linear algebra once.

:mod:`repro.engine.sweep` is the scenario fan-out companion: grids of
design points (SNR, traceback length, quantizer levels) spread across
``concurrent.futures`` workers.
"""

from ..resilience import DeadlineExceeded, DeadlinePolicy, RetryPolicy, SweepReport
from .config import ITERATIVE_METHODS, SOLVER_METHODS, SmcConfig, SolverConfig
from .core import Engine, EngineStats, default_engine
from .sweep import (
    CHECK_BACKENDS,
    EXECUTORS,
    SweepInterrupted,
    SweepResult,
    grid,
    sweep,
    sweep_check,
    sweep_values,
)

__all__ = [
    "ITERATIVE_METHODS",
    "SOLVER_METHODS",
    "SmcConfig",
    "SolverConfig",
    "Engine",
    "EngineStats",
    "default_engine",
    "CHECK_BACKENDS",
    "EXECUTORS",
    "SweepResult",
    "SweepInterrupted",
    "grid",
    "sweep",
    "sweep_check",
    "sweep_values",
    # fault-tolerance layer, re-exported for sweep call sites
    "RetryPolicy",
    "DeadlinePolicy",
    "DeadlineExceeded",
    "SweepReport",
]
