"""Parallel scenario sweeps: SNR grids, traceback lengths, quantizers.

The paper's experiments are all sweeps — a model rebuilt and re-checked
per design point (Figure 2 sweeps traceback length, Table V sweeps
antenna configurations).  Each point is independent, so this module
fans them across :mod:`concurrent.futures` workers and returns ordered,
timed, error-capturing results:

>>> from repro.engine import grid, sweep
>>> points = grid(snr_db=[4.0, 8.0], length=[3, 4])
>>> results = sweep(lambda p: p["snr_db"] * p["length"], points,
...                 executor="serial")
>>> [r.value for r in results]
[12.0, 16.0, 24.0, 32.0]

``executor`` selects ``"thread"`` (default — model building spends
most time in scipy, which releases the GIL), ``"process"`` (full
isolation; the sweep function must be picklable), or ``"serial"``
(in-process, deterministic, used by the tests and for debugging).

:func:`sweep_check` is the property-checking specialization: one pCTL
formula evaluated across a grid of models with a selectable checking
backend — ``"exact"`` (the solver engine) or the statistical
``"apmc"``/``"sprt"`` backends, which trade exactness for throughput
on large scenario grids via the fused batched trials of
:mod:`repro.smc`.
"""

from __future__ import annotations

import functools
import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .config import SmcConfig

__all__ = [
    "SweepResult",
    "grid",
    "sweep",
    "sweep_values",
    "sweep_check",
    "CHECK_BACKENDS",
]

_EXECUTORS = ("serial", "thread", "process")

#: Checking backends of :func:`sweep_check`: the exact solver engine,
#: the Hoeffding estimator, and the sequential probability ratio test.
CHECK_BACKENDS = ("exact", "apmc", "sprt")


@dataclass
class SweepResult:
    """Outcome of one sweep point.

    Attributes
    ----------
    point:
        The input scenario, exactly as submitted.
    value:
        The sweep function's return value (``None`` if it raised).
    seconds:
        Wall-clock time of this point alone.
    error:
        ``"ExcType: message"`` when the point failed, else ``None``.
    """

    point: Any
    value: Any
    seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of scenario dicts.

    >>> grid(snr_db=[4, 8], levels=[3])
    [{'snr_db': 4, 'levels': 3}, {'snr_db': 8, 'levels': 3}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _run_point(fn: Callable[[Any], Any], point: Any) -> SweepResult:
    start = time.perf_counter()
    try:
        value = fn(point)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return SweepResult(
            point=point,
            value=None,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return SweepResult(
        point=point, value=value, seconds=time.perf_counter() - start
    )


def sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
) -> List[SweepResult]:
    """Evaluate ``fn`` on every point, fanning across workers.

    Results come back in submission order regardless of completion
    order.  With ``on_error="capture"`` (default) a failing point
    yields a :class:`SweepResult` with ``error`` set and the sweep
    continues; ``on_error="raise"`` re-raises the first failure after
    the pool drains.
    """
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {', '.join(_EXECUTORS)}"
        )
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
    points = list(points)
    if executor == "serial" or len(points) <= 1:
        results = [_run_point(fn, point) for point in points]
    else:
        pool_cls = (
            ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        )
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(_run_point, fn, point) for point in points]
            results = [future.result() for future in futures]
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def _check_point(
    entry,
    *,
    build,
    formula,
    backend,
    theta,
    config,
    solver,
    seeds,
) -> Any:
    """One :func:`sweep_check` point; module-level for picklability."""
    # Imported lazily: repro.smc/pctl import the engine package.
    from ..pctl import check as exact_check
    from ..smc import smc_decide, smc_estimate

    index, point = entry
    chain = build(point)
    if backend == "exact":
        return exact_check(chain, formula, config=solver).value
    if backend == "apmc":
        return smc_estimate(
            chain,
            formula,
            epsilon=config.epsilon,
            delta=config.delta,
            seed=seeds[index],
            batch=config.batch,
        )
    return smc_decide(
        chain,
        formula,
        theta=theta,
        half_width=config.half_width,
        alpha=config.alpha,
        beta=config.beta,
        seed=seeds[index],
    )


def sweep_check(
    build: Callable[[Any], Any],
    points: Sequence[Any],
    formula: str,
    *,
    backend: str = "exact",
    theta: Optional[float] = None,
    smc: Optional[SmcConfig] = None,
    solver=None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
) -> List[SweepResult]:
    """Check one pCTL ``formula`` across a grid of models.

    ``build(point)`` constructs the DTMC of one scenario point; the
    chosen ``backend`` then checks ``formula`` against it:

    ``"exact"``
        :func:`repro.pctl.check` through the solver engine (``solver``
        selects the numerical backend).  ``value`` is the checked
        number.
    ``"apmc"``
        Batched :func:`repro.smc.smc_estimate` with the ``smc``
        config's ``epsilon``/``delta``.  ``value`` is an
        :class:`~repro.smc.ApmcResult` — estimate plus guarantee and
        the samples drawn.
    ``"sprt"``
        Batched :func:`repro.smc.smc_decide` of ``P >= theta``
        (``theta`` is required).  ``value`` is an
        :class:`~repro.smc.SprtResult`.

    Statistical points draw from independent, deterministic seed
    streams spawned from ``smc.seed``, so results are reproducible and
    executor-independent.  Only bounded path formulas are supported by
    the statistical backends — exactly the trade the paper discusses:
    scenario grids can swap exhaustive guarantees for sampled ones with
    explicit (epsilon, delta) error bounds when throughput matters.
    """
    if backend not in CHECK_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(CHECK_BACKENDS)}"
        )
    if backend == "sprt" and theta is None:
        raise ValueError("backend='sprt' needs a threshold theta")
    points = list(points)
    config = SmcConfig.coerce(smc)
    seeds = np.random.SeedSequence(config.seed).spawn(len(points))
    # partial over a module-level runner (not a closure) so
    # executor="process" can pickle the sweep function.
    run = functools.partial(
        _check_point,
        build=build,
        formula=formula,
        backend=backend,
        theta=theta,
        config=config,
        solver=solver,
        seeds=seeds,
    )
    results = sweep(
        run,
        list(enumerate(points)),
        executor=executor,
        max_workers=max_workers,
        on_error=on_error,
    )
    for result in results:  # unwrap the (index, point) plumbing
        result.point = result.point[1]
    return results


def sweep_values(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Like :func:`sweep` but returns bare values, raising on failure."""
    return [
        result.value
        for result in sweep(
            fn,
            points,
            executor=executor,
            max_workers=max_workers,
            on_error="raise",
        )
    ]
