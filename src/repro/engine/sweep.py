"""Parallel scenario sweeps: SNR grids, traceback lengths, quantizers.

The paper's experiments are all sweeps — a model rebuilt and re-checked
per design point (Figure 2 sweeps traceback length, Table V sweeps
antenna configurations).  Each point is independent, so this module
fans them across :mod:`concurrent.futures` workers and returns ordered,
timed, error-capturing results:

>>> from repro.engine import grid, sweep
>>> points = grid(snr_db=[4.0, 8.0], length=[3, 4])
>>> results = sweep(lambda p: p["snr_db"] * p["length"], points,
...                 executor="serial")
>>> [r.value for r in results]
[12.0, 16.0, 24.0, 32.0]

``executor`` selects ``"thread"`` (default — model building spends
most time in scipy, which releases the GIL), ``"process"`` (full
isolation; the sweep function must be picklable), or ``"serial"``
(in-process, deterministic, used by the tests and for debugging).
The process executor is *sharded*: the point grid is chunked into
contiguous shards (``shard_size`` points each) so worker dispatch and
pickling are amortized across a shard, and the ordered merge of shard
results is bit-identical to the serial path — per-point seed streams
are spawned by grid index, never by worker, so shards are
embarrassingly mergeable.

:func:`sweep_check` is the property-checking specialization: one pCTL
formula evaluated across a grid of models with a selectable checking
backend — ``"exact"`` (the solver engine) or the statistical
``"apmc"``/``"sprt"`` backends, which trade exactness for throughput
on large scenario grids via the fused batched trials of
:mod:`repro.smc`.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from .config import SmcConfig

__all__ = [
    "SweepResult",
    "grid",
    "sweep",
    "sweep_values",
    "sweep_check",
    "CHECK_BACKENDS",
]

_EXECUTORS = ("serial", "thread", "process")

#: Checking backends of :func:`sweep_check`: the exact solver engine,
#: the Hoeffding estimator, and the sequential probability ratio test.
CHECK_BACKENDS = ("exact", "apmc", "sprt")


@dataclass
class SweepResult:
    """Outcome of one sweep point.

    Attributes
    ----------
    point:
        The input scenario, exactly as submitted.
    value:
        The sweep function's return value (``None`` if it raised).
    seconds:
        Wall-clock time of this point alone (the *original* compute
        time when the result was served from a store).
    error:
        ``"ExcType: message"`` when the point failed, else ``None``.
    cached:
        True when the value came out of a :class:`repro.store.ResultStore`
        instead of being recomputed.
    label:
        Free-form caller annotation (e.g. the zoo family name a survey
        row belongs to) — never written by the sweep runner itself.
    """

    point: Any
    value: Any
    seconds: float
    error: Optional[str] = None
    cached: bool = False
    label: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of scenario dicts.

    >>> grid(snr_db=[4, 8], levels=[3])
    [{'snr_db': 4, 'levels': 3}, {'snr_db': 8, 'levels': 3}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _run_point(fn: Callable[[Any], Any], point: Any) -> SweepResult:
    start = time.perf_counter()
    try:
        value = fn(point)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return SweepResult(
            point=point,
            value=None,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return SweepResult(
        point=point, value=value, seconds=time.perf_counter() - start
    )


def _run_shard(fn: Callable[[Any], Any], shard: Sequence[Any]) -> List[SweepResult]:
    """One process-executor work unit: a contiguous slice of points."""
    return [_run_point(fn, point) for point in shard]


def _shard(points: Sequence[Any], workers: int, shard_size: Optional[int]):
    """Chunk ``points`` into contiguous shards for the process pool.

    The default shard size targets four shards per worker — large
    enough to amortize pickling and dispatch, small enough that a slow
    shard cannot serialize the tail of the sweep.
    """
    if shard_size is None:
        shard_size = max(1, -(-len(points) // (4 * workers)))
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [points[i : i + shard_size] for i in range(0, len(points), shard_size)]


def sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
    shard_size: Optional[int] = None,
) -> List[SweepResult]:
    """Evaluate ``fn`` on every point, fanning across workers.

    Results come back in submission order regardless of completion
    order.  With ``on_error="capture"`` (default) a failing point
    yields a :class:`SweepResult` with ``error`` set and the sweep
    continues; ``on_error="raise"`` re-raises the first failure after
    the pool drains.

    ``executor="process"`` fans *shards* (contiguous chunks of
    ``shard_size`` points, see :func:`_shard`) through a
    :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
    ordered shard results; ``shard_size`` is ignored by the other
    executors, where per-point submission is already cheap.
    """
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {', '.join(_EXECUTORS)}"
        )
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
    points = list(points)
    if executor == "serial" or len(points) <= 1:
        results = [_run_point(fn, point) for point in points]
    elif executor == "process":
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        shards = _shard(points, workers, shard_size)
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = [pool.submit(_run_shard, fn, shard) for shard in shards]
            results = [
                result for future in futures for result in future.result()
            ]
    else:
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_point, fn, point) for point in points]
            results = [future.result() for future in futures]
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def _check_point(
    entry,
    *,
    build,
    formula,
    backend,
    theta,
    config,
    solver,
    seeds,
) -> Any:
    """One :func:`sweep_check` point; module-level for picklability."""
    # Imported lazily: repro.smc/pctl import the engine package.
    from ..pctl import check as exact_check
    from ..smc import smc_decide, smc_estimate

    index, point = entry
    chain = build(point)
    if backend == "exact":
        return exact_check(chain, formula, config=solver).value
    if backend == "apmc":
        return smc_estimate(
            chain,
            formula,
            epsilon=config.epsilon,
            delta=config.delta,
            seed=seeds[index],
            batch=config.batch,
        )
    return smc_decide(
        chain,
        formula,
        theta=theta,
        half_width=config.half_width,
        alpha=config.alpha,
        beta=config.beta,
        seed=seeds[index],
    )


def _canonical_point(point: Any) -> str:
    """Canonical text identity of one point, for duplicate detection.

    Mappings are keyed order-insensitively; objects JSON cannot encode
    fall back to ``repr`` — identical reprs are treated as the same
    point, which is exact for the literal-valued parameter dicts grids
    are made of.
    """
    return json.dumps(point, sort_keys=True, default=repr)


def sweep_check(
    build: Callable[[Any], Any],
    points: Sequence[Any],
    formula: str,
    *,
    backend: str = "exact",
    theta: Optional[float] = None,
    smc: Optional[SmcConfig] = None,
    solver=None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
    shard_size: Optional[int] = None,
    store=None,
    store_key: Optional[Callable[[Any], Any]] = None,
    store_extra: Optional[Dict[str, Any]] = None,
) -> List[SweepResult]:
    """Check one pCTL ``formula`` across a grid of models.

    ``build(point)`` constructs the DTMC of one scenario point; the
    chosen ``backend`` then checks ``formula`` against it:

    ``"exact"``
        :func:`repro.pctl.check` through the solver engine (``solver``
        selects the numerical backend).  ``value`` is the checked
        number.
    ``"apmc"``
        Batched :func:`repro.smc.smc_estimate` with the ``smc``
        config's ``epsilon``/``delta``.  ``value`` is an
        :class:`~repro.smc.ApmcResult` — estimate plus guarantee and
        the samples drawn.
    ``"sprt"``
        Batched :func:`repro.smc.smc_decide` of ``P >= theta``
        (``theta`` is required).  ``value`` is an
        :class:`~repro.smc.SprtResult`.

    Statistical points draw from independent, deterministic seed
    streams spawned from ``smc.seed`` *by grid index*, so results are
    reproducible and executor-independent.  Only bounded path formulas
    are supported by the statistical backends — exactly the trade the
    paper discusses: scenario grids can swap exhaustive guarantees for
    sampled ones with explicit (epsilon, delta) error bounds when
    throughput matters.

    Identical points (same canonical parameter dict) within one call
    are solved once: duplicates reuse the first occurrence's result
    (and, for statistical backends, its seed stream).

    With ``store=`` (a :class:`repro.store.ResultStore`) the sweep is
    read-through cached: each distinct point is first looked up under
    ``(store_key(point), formula, backend, config fingerprint)``; hits
    come back with ``cached=True`` and misses are computed as usual and
    written back (successes only — failures are always retried).
    ``store_key`` maps a point to its JSON-able scenario identity
    (default: the point itself) and ``store_extra`` is provenance
    merged into every banked row (``store_extra["family"]`` also fills
    the store's queryable ``family`` column).  Store traffic happens in
    the submitting process only, so neither ``store`` nor ``store_key``
    needs to be picklable for ``executor="process"``.
    """
    if backend not in CHECK_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(CHECK_BACKENDS)}"
        )
    if backend == "sprt" and theta is None:
        raise ValueError("backend='sprt' needs a threshold theta")
    points = list(points)
    config = SmcConfig.coerce(smc)
    seeds = np.random.SeedSequence(config.seed).spawn(len(points))

    # Deduplicate: each distinct canonical point is solved exactly once,
    # at its first grid index (which also pins its spawned seed stream).
    first_index: Dict[str, int] = {}
    canon: List[str] = []
    for index, point in enumerate(points):
        key = _canonical_point(point)
        canon.append(key)
        first_index.setdefault(key, index)
    unique = sorted(set(first_index.values()))

    # Read-through: look distinct points up in the store before solving.
    by_index: Dict[int, SweepResult] = {}
    fingerprint = None
    scenario_ids: Dict[int, Any] = {}
    if store is not None:
        from ..store import check_fingerprint  # deferred: avoid cycle

        fingerprint = check_fingerprint(
            backend, smc=config, solver=solver, theta=theta
        )
        key_of = store_key if store_key is not None else lambda point: point
        scenario_ids = {index: key_of(points[index]) for index in unique}
        found = store.get_many(
            [(scenario_ids[i], formula, backend, fingerprint) for i in unique]
        )
        for index, row in zip(unique, found):
            if row is not None:
                by_index[index] = SweepResult(
                    point=points[index],
                    value=row.value,
                    seconds=row.seconds,
                    cached=True,
                )

    misses = [index for index in unique if index not in by_index]
    # partial over a module-level runner (not a closure) so
    # executor="process" can pickle the sweep function.
    run = functools.partial(
        _check_point,
        build=build,
        formula=formula,
        backend=backend,
        theta=theta,
        config=config,
        solver=solver,
        seeds=seeds,
    )
    computed = sweep(
        run,
        [(index, points[index]) for index in misses],
        executor=executor,
        max_workers=max_workers,
        on_error="capture",
        shard_size=shard_size,
    )
    for index, result in zip(misses, computed):
        result.point = result.point[1]  # unwrap the (index, point) plumbing
        by_index[index] = result
        if store is not None and result.ok:
            store.put(
                scenario_ids[index],
                formula,
                result.value,
                backend=backend,
                config=fingerprint,
                seconds=result.seconds,
                extra=store_extra,
            )

    results = []
    for index, point in enumerate(points):
        source = by_index[first_index[canon[index]]]
        if source.point is point or first_index[canon[index]] == index:
            results.append(source)
        else:  # duplicate point: share the solve, keep the caller's object
            results.append(dataclass_replace(source, point=point))
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def sweep_values(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Like :func:`sweep` but returns bare values, raising on failure."""
    return [
        result.value
        for result in sweep(
            fn,
            points,
            executor=executor,
            max_workers=max_workers,
            on_error="raise",
        )
    ]
