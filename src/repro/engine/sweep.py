"""Parallel scenario sweeps: SNR grids, traceback lengths, quantizers.

The paper's experiments are all sweeps — a model rebuilt and re-checked
per design point (Figure 2 sweeps traceback length, Table V sweeps
antenna configurations).  Each point is independent, so this module
fans them across :mod:`concurrent.futures` workers and returns ordered,
timed, error-capturing results:

>>> from repro.engine import grid, sweep
>>> points = grid(snr_db=[4.0, 8.0], length=[3, 4])
>>> results = sweep(lambda p: p["snr_db"] * p["length"], points,
...                 executor="serial")
>>> [r.value for r in results]
[12.0, 16.0, 24.0, 32.0]

``executor`` selects ``"thread"`` (default — model building spends
most time in scipy, which releases the GIL), ``"process"`` (full
isolation; the sweep function must be picklable), or ``"serial"``
(in-process, deterministic, used by the tests and for debugging).
The process executor is *sharded*: the point grid is chunked into
contiguous shards (``shard_size`` points each) so worker dispatch and
pickling are amortized across a shard, and the ordered merge of shard
results is bit-identical to the serial path — per-point seed streams
are spawned by grid index, never by worker, so shards are
embarrassingly mergeable.

Every runner is fault-tolerant (see :mod:`repro.resilience`):

* a :class:`~repro.resilience.RetryPolicy` re-attempts failing points
  with exponential backoff and deterministic per-point jitter;
* a :class:`~repro.resilience.DeadlinePolicy` bounds each point's
  wall-clock — watchdog threads on the serial/thread executors,
  pool-level ``concurrent.futures`` timeouts on the process executor;
* the process executor survives worker death: on
  ``BrokenProcessPool`` (or a pool-level deadline overrun) the pool is
  rebuilt, lost shards are resubmitted one at a time, and a
  repeatedly-fatal shard is bisected down to the single poisoned
  point, which is *quarantined* into a :class:`SweepResult` carrying
  its error and attempt count while every surviving point's result
  stays bit-identical to the serial path;
* failed results carry an abbreviated traceback (``traceback``) and
  the attempt count (``attempts``) for post-mortems, and
  :func:`sweep_check` validates every emitted value
  (:func:`repro.resilience.validate_guarantee`), attaching structured
  ``warnings`` instead of silently accepting NaN/Inf/out-of-range
  numbers.

:func:`sweep_check` is the property-checking specialization: one pCTL
formula evaluated across a grid of models with a selectable checking
backend — ``"exact"`` (the solver engine) or the statistical
``"apmc"``/``"sprt"`` backends, which trade exactness for throughput
on large scenario grids via the fused batched trials of
:mod:`repro.smc`.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..resilience.policies import DeadlineExceeded, DeadlinePolicy, RetryPolicy
from ..resilience.validate import ValidationWarning, formula_kind, validate_guarantee
from .config import SmcConfig

__all__ = [
    "SweepResult",
    "SweepInterrupted",
    "grid",
    "sweep",
    "sweep_values",
    "sweep_check",
    "CHECK_BACKENDS",
    "EXECUTORS",
]

#: Every sweep executor: in-process serial/thread, the sharded process
#: pool, and the networked worker fleet of :mod:`repro.service`.
EXECUTORS = ("serial", "thread", "process", "remote")

_EXECUTORS = EXECUTORS

#: Checking backends of :func:`sweep_check`: the exact solver engine,
#: the Hoeffding estimator, and the sequential probability ratio test.
CHECK_BACKENDS = ("exact", "apmc", "sprt")


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep; ``partial`` holds what had finished.

    Every runner converts a ``KeyboardInterrupt`` into this after
    shutting its workers down cleanly (pools terminated, remote jobs
    cancelled — no orphaned processes), so callers can salvage the
    completed :class:`SweepResult` list: :func:`sweep_check` banks the
    successful partials into its :class:`~repro.store.ResultStore`
    before re-raising, which is what makes a Ctrl-C'd ``--store`` sweep
    resumable with ``--resume``.
    """

    def __init__(self, partial: List["SweepResult"]):
        super().__init__(f"sweep interrupted with {len(partial)} point(s) done")
        self.partial = partial


@dataclass
class SweepResult:
    """Outcome of one sweep point.

    Attributes
    ----------
    point:
        The input scenario, exactly as submitted.
    value:
        The sweep function's return value (``None`` if it raised).
    seconds:
        Wall-clock time of this point alone (the *original* compute
        time when the result was served from a store).
    error:
        ``"ExcType: message"`` when the point failed, else ``None``.
    cached:
        True when the value came out of a :class:`repro.store.ResultStore`
        instead of being recomputed.
    label:
        Free-form caller annotation (e.g. the zoo family name a survey
        row belongs to) — never written by the sweep runner itself.
    attempts:
        How many tries this point consumed: in-worker retries under a
        :class:`~repro.resilience.RetryPolicy`, or — for points
        quarantined by process-pool crash recovery — the number of
        pool waves the point was implicated in before isolation.
    traceback:
        Abbreviated traceback (the last few frames) of the failure,
        so a quarantined point is debuggable from a
        :class:`~repro.resilience.SweepReport`; ``None`` on success.
    warnings:
        :class:`~repro.resilience.ValidationWarning` records attached
        by :func:`sweep_check`'s guarantee validation — empty when the
        value passed every applicable check.
    """

    point: Any
    value: Any
    seconds: float
    error: Optional[str] = None
    cached: bool = False
    label: Optional[str] = None
    attempts: int = 1
    traceback: Optional[str] = None
    warnings: Tuple[ValidationWarning, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def timed_out(self) -> bool:
        """Was this point killed by a :class:`DeadlinePolicy`?"""
        return self.error is not None and self.error.startswith(
            "DeadlineExceeded"
        )


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of scenario dicts.

    >>> grid(snr_db=[4, 8], levels=[3])
    [{'snr_db': 4, 'levels': 3}, {'snr_db': 8, 'levels': 3}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _abbreviate_traceback(exc: BaseException, limit: int = 3) -> str:
    """The last ``limit`` frames plus the exception line — enough to
    debug a quarantined point without shipping a full stack dump."""
    frames = _traceback.format_tb(exc.__traceback__)
    if len(frames) > limit:
        frames = [f"  ... ({len(frames) - limit} frames elided)\n"] + frames[
            -limit:
        ]
    return "".join(frames + [f"{type(exc).__name__}: {exc}"]).rstrip()


def _call_with_deadline(
    fn: Callable[[Any], Any], point: Any, deadline: Optional[DeadlinePolicy]
) -> Any:
    """Run ``fn(point)``, bounded by a watchdog when a deadline is set.

    The point runs in a daemon helper thread; when the deadline passes
    the helper is *abandoned* (Python threads cannot be killed) and
    :class:`DeadlineExceeded` is raised in the caller — the watchdog
    half of the deadline contract (the process executor uses pool
    timeouts instead, see :func:`_process_sweep`).
    """
    if deadline is None:
        return fn(point)
    outcome: Dict[str, Any] = {}

    def _target() -> None:
        try:
            outcome["value"] = fn(point)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc

    watchdog = threading.Thread(
        target=_target, daemon=True, name="sweep-point-watchdog"
    )
    watchdog.start()
    watchdog.join(deadline.timeout)
    if watchdog.is_alive():
        raise DeadlineExceeded(
            f"point exceeded its {deadline.timeout:.6g}s deadline"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def _run_point(
    fn: Callable[[Any], Any],
    point: Any,
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[DeadlinePolicy] = None,
) -> SweepResult:
    start = time.perf_counter()
    attempt = 1
    while True:
        try:
            value = _call_with_deadline(fn, point, deadline)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            if retry is not None and retry.should_retry(exc, attempt):
                delay = retry.delay(_canonical_point(point), attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            return SweepResult(
                point=point,
                value=None,
                seconds=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
                traceback=_abbreviate_traceback(exc),
                attempts=attempt,
            )
        return SweepResult(
            point=point,
            value=value,
            seconds=time.perf_counter() - start,
            attempts=attempt,
        )


def _run_shard(
    fn: Callable[[Any], Any],
    shard: Sequence[Any],
    retry: Optional[RetryPolicy] = None,
) -> List[SweepResult]:
    """One process-executor work unit: a contiguous slice of points.

    Retries run *inside* the worker (cheap, no resubmission); deadlines
    are enforced at the pool level by :func:`_process_sweep`, which is
    the only enforcement that also catches hard (C-level) hangs.
    """
    return [_run_point(fn, point, retry) for point in shard]


def _shard(points: Sequence[Any], workers: int, shard_size: Optional[int]):
    """Chunk ``points`` into contiguous index ranges for the pool.

    The default shard size targets four shards per worker — large
    enough to amortize pickling and dispatch, small enough that a slow
    shard cannot serialize the tail of the sweep.  Ranges (rather than
    point slices) are the unit of crash recovery: a fatal range is
    bisected by index until the poisoned point is isolated.
    """
    if shard_size is None:
        shard_size = max(1, -(-len(points) // (4 * workers)))
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, len(points)))
        for start in range(0, len(points), shard_size)
    ]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block on a hung worker forever, so
    pending futures are cancelled and surviving worker processes are
    terminated outright — the pool is disposable, the next wave builds
    a fresh one.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=1.0)


def _wave_budget(
    deadline: Optional[DeadlinePolicy],
    retry: Optional[RetryPolicy],
    wave_points: int,
    workers: int,
) -> Optional[float]:
    """Pool-level wait budget for one wave of shard futures.

    Conservative: per-point budget (deadline x in-worker retry
    attempts) times the worst sequential run any single worker might
    see, plus one extra point and the policy's startup grace.  A wave
    that overruns it has a hung worker somewhere; the not-yet-finished
    shards become recovery suspects.
    """
    if deadline is None:
        return None
    attempts = retry.max_attempts if retry is not None else 1
    per_point = deadline.timeout * attempts
    rounds = -(-wave_points // max(1, workers))
    return per_point * (rounds + 1) + deadline.grace


def _process_sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    workers: int,
    shard_size: Optional[int],
    retry: Optional[RetryPolicy],
    deadline: Optional[DeadlinePolicy],
) -> List[SweepResult]:
    """Sharded process-pool sweep with crash recovery.

    The happy path is one wave: every shard submitted to one pool,
    results merged by global index (bit-identical to the serial path —
    nothing about a point's computation depends on which worker ran
    it).  On a fault — ``BrokenProcessPool`` from a dying worker, or a
    pool-budget overrun from a hung one — the pool is torn down and
    the fabric switches to *isolation mode*: suspect ranges are re-run
    one per wave in a fresh pool, fatal ranges are bisected, and the
    single poisoned point left standing is quarantined into a
    :class:`SweepResult` carrying the failure reason and the number of
    waves it was implicated in.  Completed shard results are never
    recomputed; innocent points re-run deterministically.
    """
    results: Dict[int, SweepResult] = {}
    strikes: Dict[int, int] = {}
    pending: List[Tuple[int, int]] = _shard(points, workers, shard_size)
    isolate = False
    try:
        results = _process_waves(
            fn, points, pending, workers=workers, retry=retry,
            deadline=deadline, results=results, strikes=strikes,
            isolate=isolate,
        )
    except KeyboardInterrupt:
        # Each wave's ``finally`` already tore its pool down (no
        # orphaned workers); salvage what completed, in grid order.
        raise SweepInterrupted(
            [results[index] for index in sorted(results)]
        ) from None
    return [results[index] for index in range(len(points))]


def _process_waves(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    pending: List[Tuple[int, int]],
    *,
    workers: int,
    retry: Optional[RetryPolicy],
    deadline: Optional[DeadlinePolicy],
    results: Dict[int, SweepResult],
    strikes: Dict[int, int],
    isolate: bool,
) -> Dict[int, SweepResult]:
    """The wave loop of :func:`_process_sweep`; fills ``results`` in
    place (so an interrupt can salvage partials) and returns it."""
    while pending:
        if isolate:  # one suspect range per wave: unambiguous blame
            wave, pending = [pending[0]], pending[1:]
        else:
            wave, pending = pending, []
        wave_points = sum(stop - start for start, stop in wave)
        budget = _wave_budget(deadline, retry, wave_points, workers)
        pool = ProcessPoolExecutor(max_workers=min(workers, len(wave)))
        started = time.perf_counter()
        futures: Dict[Any, Tuple[int, int]] = {}
        try:
            futures = {
                pool.submit(_run_shard, fn, points[start:stop], retry): (
                    start,
                    stop,
                )
                for start, stop in wave
            }
            done, not_done = _futures_wait(futures, timeout=budget)
            elapsed = time.perf_counter() - started
            suspects: List[Tuple[Tuple[int, int], str]] = []
            for future in done:
                span = futures[future]
                try:
                    shard_results = future.result()
                except Exception as exc:  # worker death, pool breakage
                    detail = str(exc) or "worker process died"
                    suspects.append(
                        (span, f"{type(exc).__name__}: {detail}")
                    )
                else:
                    for offset, result in enumerate(shard_results):
                        results[span[0] + offset] = result
            for future in not_done:
                span = futures[future]
                suspects.append(
                    (
                        span,
                        f"DeadlineExceeded: shard still running after the"
                        f" {budget:.6g}s pool budget",
                    )
                )
        finally:
            if any(not future.done() for future in futures):
                _terminate_pool(pool)  # hung workers: hard stop
            else:
                pool.shutdown(wait=True)
        if suspects and not isolate:
            isolate = True
        for (start, stop), reason in suspects:
            for index in range(start, stop):
                strikes[index] = strikes.get(index, 0) + 1
            if stop - start == 1:  # the poisoned point, isolated
                results[start] = SweepResult(
                    point=points[start],
                    value=None,
                    seconds=elapsed,
                    error=reason,
                    attempts=strikes[start],
                )
            else:  # bisect: halve the suspect range and requeue
                mid = (start + stop) // 2
                pending.extend([(start, mid), (mid, stop)])
    return results


def sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
    shard_size: Optional[int] = None,
    retry: Union[RetryPolicy, int, None] = None,
    deadline: Union[DeadlinePolicy, float, None] = None,
    remote: Optional[str] = None,
) -> List[SweepResult]:
    """Evaluate ``fn`` on every point, fanning across workers.

    Results come back in submission order regardless of completion
    order.  With ``on_error="capture"`` (default) a failing point
    yields a :class:`SweepResult` with ``error`` set and the sweep
    continues; ``on_error="raise"`` re-raises the first failure after
    the pool drains.

    ``executor="process"`` fans *shards* (contiguous chunks of
    ``shard_size`` points, see :func:`_shard`) through a
    :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
    ordered shard results; ``shard_size`` is ignored by the serial and
    thread executors, where per-point submission is already cheap.  The
    process path survives worker crashes and pool-level deadline
    overruns — see :func:`_process_sweep`.

    ``executor="remote"`` ships the sweep to a
    :class:`~repro.service.Coordinator` worker fleet (``remote`` names
    its ``HOST:PORT`` address, or the ``REPRO_COORDINATOR`` environment
    variable does): workers pull shard leases, dead workers have their
    leases reassigned, and the merged results are bit-identical to the
    serial path — see :mod:`repro.service`.  ``fn`` must be picklable,
    exactly as for the process executor.

    ``retry`` (a :class:`~repro.resilience.RetryPolicy` or a bare
    attempt count) re-attempts transient failures per point;
    ``deadline`` (a :class:`~repro.resilience.DeadlinePolicy` or bare
    seconds) bounds each point's wall-clock.  Both default to off, in
    which case this runner behaves exactly as it always has.

    A Ctrl-C lands as :class:`SweepInterrupted` after the executor has
    shut down cleanly (pools terminated, remote job cancelled — no
    orphaned workers), carrying the completed partial results.
    """
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {', '.join(_EXECUTORS)}"
        )
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
    retry = RetryPolicy.coerce(retry)
    deadline = DeadlinePolicy.coerce(deadline)
    points = list(points)
    if executor == "remote":
        from ..service.client import remote_sweep  # deferred: avoid cycle

        address = remote or os.environ.get("REPRO_COORDINATOR")
        if not address:
            raise ValueError(
                "executor='remote' needs a coordinator address:"
                " pass remote='HOST:PORT' or set REPRO_COORDINATOR"
            )
        results = remote_sweep(
            fn,
            points,
            connect=address,
            shard_size=shard_size,
            retry=retry,
            deadline=deadline,
        )
    elif executor == "serial" or len(points) <= 1:
        results = []
        try:
            for point in points:
                results.append(_run_point(fn, point, retry, deadline))
        except KeyboardInterrupt:
            raise SweepInterrupted(results) from None
    elif executor == "process":
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        results = _process_sweep(
            fn,
            points,
            workers=workers,
            shard_size=shard_size,
            retry=retry,
            deadline=deadline,
        )
    else:
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        pool = ThreadPoolExecutor(max_workers=workers)
        futures = [
            pool.submit(_run_point, fn, point, retry, deadline)
            for point in points
        ]
        try:
            results = [future.result() for future in futures]
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            partial = [
                future.result()
                for future in futures
                if future.done()
                and not future.cancelled()
                and future.exception() is None
            ]
            raise SweepInterrupted(partial) from None
        pool.shutdown(wait=True)
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def _check_point(
    entry,
    *,
    build,
    formula,
    backend,
    theta,
    config,
    solver,
    seeds,
) -> Any:
    """One :func:`sweep_check` point; module-level for picklability."""
    # Imported lazily: repro.smc/pctl import the engine package.
    from ..pctl import check as exact_check
    from ..smc import smc_decide, smc_estimate

    index, point = entry
    chain = build(point)
    if backend == "exact":
        return exact_check(chain, formula, config=solver).value
    if backend == "apmc":
        return smc_estimate(
            chain,
            formula,
            epsilon=config.epsilon,
            delta=config.delta,
            seed=seeds[index],
            batch=config.batch,
        )
    return smc_decide(
        chain,
        formula,
        theta=theta,
        half_width=config.half_width,
        alpha=config.alpha,
        beta=config.beta,
        seed=seeds[index],
    )


def _canonical_point(point: Any) -> str:
    """Canonical text identity of one point, for duplicate detection.

    Mappings are keyed order-insensitively; objects JSON cannot encode
    fall back to ``repr`` — identical reprs are treated as the same
    point, which is exact for the literal-valued parameter dicts grids
    are made of.
    """
    return json.dumps(point, sort_keys=True, default=repr)


def sweep_check(
    build: Callable[[Any], Any],
    points: Sequence[Any],
    formula: str,
    *,
    backend: str = "exact",
    theta: Optional[float] = None,
    smc: Optional[SmcConfig] = None,
    solver=None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
    shard_size: Optional[int] = None,
    store=None,
    store_key: Optional[Callable[[Any], Any]] = None,
    store_extra: Optional[Dict[str, Any]] = None,
    retry: Union[RetryPolicy, int, None] = None,
    deadline: Union[DeadlinePolicy, float, None] = None,
    remote: Optional[str] = None,
    validate: bool = True,
) -> List[SweepResult]:
    """Check one pCTL ``formula`` across a grid of models.

    ``build(point)`` constructs the DTMC of one scenario point; the
    chosen ``backend`` then checks ``formula`` against it:

    ``"exact"``
        :func:`repro.pctl.check` through the solver engine (``solver``
        selects the numerical backend).  ``value`` is the checked
        number.
    ``"apmc"``
        Batched :func:`repro.smc.smc_estimate` with the ``smc``
        config's ``epsilon``/``delta``.  ``value`` is an
        :class:`~repro.smc.ApmcResult` — estimate plus guarantee and
        the samples drawn.
    ``"sprt"``
        Batched :func:`repro.smc.smc_decide` of ``P >= theta``
        (``theta`` is required).  ``value`` is an
        :class:`~repro.smc.SprtResult`.

    Statistical points draw from independent, deterministic seed
    streams spawned from ``smc.seed`` *by grid index*, so results are
    reproducible and executor-independent.  Only bounded path formulas
    are supported by the statistical backends — exactly the trade the
    paper discusses: scenario grids can swap exhaustive guarantees for
    sampled ones with explicit (epsilon, delta) error bounds when
    throughput matters.

    Identical points (same canonical parameter dict) within one call
    are solved once: duplicates reuse the first occurrence's result
    (and, for statistical backends, its seed stream).

    With ``store=`` (a :class:`repro.store.ResultStore`) the sweep is
    read-through cached: each distinct point is first looked up under
    ``(store_key(point), formula, backend, config fingerprint)``; hits
    come back with ``cached=True`` and misses are computed as usual and
    written back (successes only — failures are always retried).
    ``store_key`` maps a point to its JSON-able scenario identity
    (default: the point itself) and ``store_extra`` is provenance
    merged into every banked row (``store_extra["family"]`` also fills
    the store's queryable ``family`` column).  Store traffic happens in
    the submitting process only, so neither ``store`` nor ``store_key``
    needs to be picklable for ``executor="process"``.

    Only *successful* points are ever banked — a transient failure is
    recomputed on the next run, never served as a warm hit — which is
    also the checkpoint/resume contract: re-running an interrupted or
    partially-failed sweep against the same store recomputes exactly
    the missing and failed points.

    ``retry``/``deadline`` thread the fault-tolerance policies of
    :mod:`repro.resilience` into the underlying runner.  With
    ``validate=True`` (default) every emitted value is passed through
    :func:`repro.resilience.validate_guarantee` and violations
    (NaN/Inf, out-of-range probabilities) are attached to the result's
    ``warnings`` — downgraded to structured records, never silently
    accepted and never raised.
    """
    if backend not in CHECK_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(CHECK_BACKENDS)}"
        )
    if executor not in _EXECUTORS:
        # Fail before any store traffic or seed spawning, with the full
        # executor list — not a deep error out of the runner.
        raise ValueError(
            f"unknown executor {executor!r}; choose from {', '.join(_EXECUTORS)}"
        )
    if backend == "sprt" and theta is None:
        raise ValueError("backend='sprt' needs a threshold theta")
    points = list(points)
    config = SmcConfig.coerce(smc)
    seeds = np.random.SeedSequence(config.seed).spawn(len(points))

    # Deduplicate: each distinct canonical point is solved exactly once,
    # at its first grid index (which also pins its spawned seed stream).
    first_index: Dict[str, int] = {}
    canon: List[str] = []
    for index, point in enumerate(points):
        key = _canonical_point(point)
        canon.append(key)
        first_index.setdefault(key, index)
    unique = sorted(set(first_index.values()))

    # Read-through: look distinct points up in the store before solving.
    by_index: Dict[int, SweepResult] = {}
    fingerprint = None
    scenario_ids: Dict[int, Any] = {}
    if store is not None:
        from ..store import check_fingerprint  # deferred: avoid cycle

        fingerprint = check_fingerprint(
            backend, smc=config, solver=solver, theta=theta
        )
        key_of = store_key if store_key is not None else lambda point: point
        scenario_ids = {index: key_of(points[index]) for index in unique}
        found = store.get_many(
            [(scenario_ids[i], formula, backend, fingerprint) for i in unique]
        )
        for index, row in zip(unique, found):
            if row is not None:
                by_index[index] = SweepResult(
                    point=points[index],
                    value=row.value,
                    seconds=row.seconds,
                    cached=True,
                )

    misses = [index for index in unique if index not in by_index]
    # partial over a module-level runner (not a closure) so
    # executor="process" can pickle the sweep function.
    run = functools.partial(
        _check_point,
        build=build,
        formula=formula,
        backend=backend,
        theta=theta,
        config=config,
        solver=solver,
        seeds=seeds,
    )
    try:
        computed = sweep(
            run,
            [(index, points[index]) for index in misses],
            executor=executor,
            max_workers=max_workers,
            on_error="capture",
            shard_size=shard_size,
            retry=retry,
            deadline=deadline,
            remote=remote,
        )
    except SweepInterrupted as interrupt:
        # Ctrl-C: bank every successful partial before propagating, so
        # a --store sweep resumes from exactly where it was cut off.
        if store is not None:
            for result in interrupt.partial:
                if result.ok and isinstance(result.point, tuple):
                    index = result.point[0]
                    store.put(
                        scenario_ids[index],
                        formula,
                        result.value,
                        backend=backend,
                        config=fingerprint,
                        seconds=result.seconds,
                        extra=store_extra,
                    )
        raise
    for index, result in zip(misses, computed):
        result.point = result.point[1]  # unwrap the (index, point) plumbing
        by_index[index] = result
        # Failures are never banked: a quarantined or timed-out point
        # must be recomputed on the next run, not served as a warm hit.
        if store is not None and result.ok:
            store.put(
                scenario_ids[index],
                formula,
                result.value,
                backend=backend,
                config=fingerprint,
                seconds=result.seconds,
                extra=store_extra,
            )

    if validate:
        kind = formula_kind(formula)
        for result in by_index.values():
            if result.ok:
                result.warnings = validate_guarantee(result.value, kind=kind)

    results = []
    for index, point in enumerate(points):
        source = by_index[first_index[canon[index]]]
        if source.point is point or first_index[canon[index]] == index:
            results.append(source)
        else:  # duplicate point: share the solve, keep the caller's object
            results.append(dataclass_replace(source, point=point))
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def sweep_values(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Like :func:`sweep` but returns bare values, raising on failure."""
    return [
        result.value
        for result in sweep(
            fn,
            points,
            executor=executor,
            max_workers=max_workers,
            on_error="raise",
        )
    ]
