"""Parallel scenario sweeps: SNR grids, traceback lengths, quantizers.

The paper's experiments are all sweeps — a model rebuilt and re-checked
per design point (Figure 2 sweeps traceback length, Table V sweeps
antenna configurations).  Each point is independent, so this module
fans them across :mod:`concurrent.futures` workers and returns ordered,
timed, error-capturing results:

>>> from repro.engine import grid, sweep
>>> points = grid(snr_db=[4.0, 8.0], length=[3, 4])
>>> results = sweep(lambda p: p["snr_db"] * p["length"], points,
...                 executor="serial")
>>> [r.value for r in results]
[12.0, 16.0, 24.0, 32.0]

``executor`` selects ``"thread"`` (default — model building spends
most time in scipy, which releases the GIL), ``"process"`` (full
isolation; the sweep function must be picklable), or ``"serial"``
(in-process, deterministic, used by the tests and for debugging).
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["SweepResult", "grid", "sweep", "sweep_values"]

_EXECUTORS = ("serial", "thread", "process")


@dataclass
class SweepResult:
    """Outcome of one sweep point.

    Attributes
    ----------
    point:
        The input scenario, exactly as submitted.
    value:
        The sweep function's return value (``None`` if it raised).
    seconds:
        Wall-clock time of this point alone.
    error:
        ``"ExcType: message"`` when the point failed, else ``None``.
    """

    point: Any
    value: Any
    seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of scenario dicts.

    >>> grid(snr_db=[4, 8], levels=[3])
    [{'snr_db': 4, 'levels': 3}, {'snr_db': 8, 'levels': 3}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _run_point(fn: Callable[[Any], Any], point: Any) -> SweepResult:
    start = time.perf_counter()
    try:
        value = fn(point)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return SweepResult(
            point=point,
            value=None,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return SweepResult(
        point=point, value=value, seconds=time.perf_counter() - start
    )


def sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
) -> List[SweepResult]:
    """Evaluate ``fn`` on every point, fanning across workers.

    Results come back in submission order regardless of completion
    order.  With ``on_error="capture"`` (default) a failing point
    yields a :class:`SweepResult` with ``error`` set and the sweep
    continues; ``on_error="raise"`` re-raises the first failure after
    the pool drains.
    """
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {', '.join(_EXECUTORS)}"
        )
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
    points = list(points)
    if executor == "serial" or len(points) <= 1:
        results = [_run_point(fn, point) for point in points]
    else:
        pool_cls = (
            ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        )
        workers = max_workers or min(len(points), os.cpu_count() or 1)
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(_run_point, fn, point) for point in points]
            results = [future.result() for future in futures]
    if on_error == "raise":
        for result in results:
            if not result.ok:
                raise RuntimeError(
                    f"sweep point {result.point!r} failed: {result.error}"
                )
    return results


def sweep_values(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Like :func:`sweep` but returns bare values, raising on failure."""
    return [
        result.value
        for result in sweep(
            fn,
            points,
            executor=executor,
            max_workers=max_workers,
            on_error="raise",
        )
    ]
