"""The unified solver engine: one owner for every linear-algebra solve.

Historically each call site picked its own solver: the pCTL checker
hard-coded ``spsolve`` in two places, steady state solved and fell back
ad hoc, and the iterative engines of :mod:`repro.dtmc.linear` were
wired to nothing.  :class:`Engine` centralizes that choice behind a
:class:`~repro.engine.config.SolverConfig` and adds the reuse a batch
of property checks needs:

* the LU factorization of ``(I - A)`` for a subsystem is computed once
  per ``(chain, subsystem)`` and shared across properties and
  right-hand sides (``method="lu"``, the default);
* Prob0/Prob1 graph precomputations are memoized per
  ``(chain, left, right)`` target set;
* BSCC decompositions, stationary distributions and long-run
  distributions are memoized per chain;
* every cache hit/miss and factorization is counted in
  :class:`EngineStats`, which the analyzer surfaces as provenance on
  its :class:`~repro.core.analyzer.Guarantee` records.

Engines hold per-chain caches through weak references, so dropping a
chain frees its factorizations.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..dtmc import steady_state as _steady
from ..dtmc.chain import DTMC
from ..dtmc.graph import bottom_sccs, constrained_backward_reachable
from ..dtmc.linear import gauss_seidel_solve, jacobi_solve, power_solve
from ..dtmc.simulate import PathSampler
from ..dtmc.sparse_utils import as_csr
from .config import SolverConfig

__all__ = ["Engine", "EngineStats", "default_engine"]


@dataclass
class EngineStats:
    """Mutable counters describing the work an engine has performed."""

    solves: int = 0
    lu_factorizations: int = 0
    lu_cache_hits: int = 0
    prob01_computations: int = 0
    prob01_cache_hits: int = 0
    solution_cache_hits: int = 0
    bscc_computations: int = 0
    bscc_cache_hits: int = 0
    stationary_computations: int = 0
    stationary_cache_hits: int = 0
    long_run_computations: int = 0
    long_run_cache_hits: int = 0
    sampler_builds: int = 0
    sampler_cache_hits: int = 0
    matvecs: int = 0

    @property
    def cache_hits(self) -> int:
        """Total reuse events across every cache."""
        return (
            self.lu_cache_hits
            + self.prob01_cache_hits
            + self.solution_cache_hits
            + self.bscc_cache_hits
            + self.stationary_cache_hits
            + self.long_run_cache_hits
            + self.sampler_cache_hits
        )

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters (for before/after provenance deltas)."""
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
        }


@dataclass
class _ChainCache:
    """Everything the engine remembers about one chain."""

    ref: weakref.ref
    lu: Dict[bytes, object] = field(default_factory=dict)
    prob01: Dict[Tuple[bytes, bytes], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    until: Dict[Tuple[bytes, bytes], np.ndarray] = field(default_factory=dict)
    reach_reward: Dict[Tuple[bytes, bytes], np.ndarray] = field(
        default_factory=dict
    )
    bsccs: Optional[List[List[int]]] = None
    stationary: Optional[np.ndarray] = None
    long_run: Optional[np.ndarray] = None
    sampler: Optional[PathSampler] = None


def _bits(vector: np.ndarray) -> bytes:
    """Compact cache key for a boolean per-state vector."""
    return np.packbits(np.asarray(vector, dtype=bool)).tobytes()


class Engine:
    """Owns solver choice and per-chain numerical caches.

    Parameters
    ----------
    config:
        A :class:`SolverConfig`, a bare method name (``"jacobi"``), or
        ``None`` for the defaults (LU-cached direct solves).

    One engine may serve any number of chains; caches are keyed by
    chain identity and dropped when the chain is garbage collected.
    """

    def __init__(
        self, config: Union[SolverConfig, str, None] = None
    ) -> None:
        self.config = SolverConfig.coerce(config)
        self.stats = EngineStats()
        self._chains: Dict[int, _ChainCache] = {}

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache(self, chain: DTMC) -> _ChainCache:
        key = id(chain)
        entry = self._chains.get(key)
        if entry is not None and entry.ref() is chain:
            return entry
        chains = self._chains

        def _evict(_ref, _key=key) -> None:
            chains.pop(_key, None)

        entry = _ChainCache(ref=weakref.ref(chain, _evict))
        chains[key] = entry
        return entry

    def clear(self) -> None:
        """Drop every cached factorization and memoized result."""
        self._chains.clear()

    def register(self, chain: DTMC) -> "Engine":
        """Adopt ``chain`` into the engine's cache bookkeeping.

        Registration creates the per-chain cache slot eagerly, so the
        scenario-zoo pipeline can hand back a chain that is already
        known to the engine every later check will run on.  It is
        idempotent and costs nothing beyond the (empty) slot; caches
        still fill lazily on first use and are dropped when the chain
        is garbage collected, exactly as for lazily-discovered chains.
        """
        self._cache(chain)
        return self

    @property
    def num_registered_chains(self) -> int:
        """Number of chains the engine currently tracks caches for."""
        return len(self._chains)

    # ------------------------------------------------------------------
    # Linear-system kernel
    # ------------------------------------------------------------------
    def solve_subsystem(
        self, chain: DTMC, unknown: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve ``(I - P[unknown][:, unknown]) x = rhs``.

        This is the single equation shape of probabilistic model
        checking — unbounded until, reachability rewards, and
        absorption probabilities all reduce to it — dispatched to the
        configured backend.
        """
        unknown = np.asarray(unknown, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.float64)
        self.stats.solves += 1
        method = self.config.method
        if method == "lu":
            lu = self._factorization(chain, unknown)
            return np.atleast_1d(lu.solve(rhs))
        sub = chain.transition_matrix[unknown][:, unknown]
        if method == "direct":
            identity = sparse.identity(unknown.size, format="csr")
            return np.atleast_1d(
                sparse_linalg.spsolve((identity - sub).tocsc(), rhs)
            )
        solver = {
            "power": power_solve,
            "jacobi": jacobi_solve,
            "gauss-seidel": gauss_seidel_solve,
        }[method]
        return solver(
            as_csr(sub),
            rhs,
            tolerance=self.config.tolerance,
            max_iterations=self.config.max_iterations,
        )

    def _factorization(self, chain: DTMC, unknown: np.ndarray):
        """Cached sparse LU of ``(I - P[unknown][:, unknown])``."""
        cache = self._cache(chain)
        key = unknown.tobytes()
        lu = cache.lu.get(key)
        if lu is not None:
            self.stats.lu_cache_hits += 1
            return lu
        sub = chain.transition_matrix[unknown][:, unknown]
        identity = sparse.identity(unknown.size, format="csr")
        lu = sparse_linalg.splu((identity - sub).tocsc())
        cache.lu[key] = lu
        self.stats.lu_factorizations += 1
        return lu

    # ------------------------------------------------------------------
    # Graph precomputations
    # ------------------------------------------------------------------
    def prob01(
        self, chain: DTMC, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized Prob0/Prob1 sets for ``P(left U right)``.

        Returns boolean vectors ``(prob0, prob1)``: states whose until
        probability is exactly 0 (cannot reach ``right`` along ``left``
        paths) and exactly 1.
        """
        left = np.asarray(left, dtype=bool)
        right = np.asarray(right, dtype=bool)
        cache = self._cache(chain)
        key = (_bits(left), _bits(right))
        hit = cache.prob01.get(key)
        if hit is not None:
            self.stats.prob01_cache_hits += 1
            return hit[0].copy(), hit[1].copy()
        n = chain.num_states
        through = left & ~right

        # Prob0: complement of backward reachability from `right`.
        can_reach = constrained_backward_reachable(
            chain, np.nonzero(right)[0], through
        )
        prob0 = np.ones(n, dtype=bool)
        prob0[list(can_reach)] = False

        # Prob1 = complement of states that, staying within left&!right,
        # can reach a Prob0 state (Baier & Katoen, Lemma 10.16).
        prob0_states = np.nonzero(prob0)[0]
        can_fail = constrained_backward_reachable(chain, prob0_states, through)
        prob1 = np.ones(n, dtype=bool)
        prob1[list(can_fail)] = False
        prob1[prob0_states] = False
        prob1 |= right  # target states trivially satisfy

        cache.prob01[key] = (prob0, prob1)
        self.stats.prob01_computations += 1
        # Copies, like the solution caches: callers may use the vectors
        # as scratch masks without poisoning the cache.
        return prob0.copy(), prob1.copy()

    # ------------------------------------------------------------------
    # Property-level solves
    # ------------------------------------------------------------------
    def unbounded_until(
        self, chain: DTMC, left: np.ndarray, right: np.ndarray
    ) -> np.ndarray:
        """Per-state ``P(left U right)`` via Prob0/Prob1 + linear solve."""
        left = np.asarray(left, dtype=bool)
        right = np.asarray(right, dtype=bool)
        cache = self._cache(chain)
        key = (_bits(left), _bits(right))
        hit = cache.until.get(key)
        if hit is not None:
            self.stats.solution_cache_hits += 1
            return hit.copy()

        prob0, prob1 = self.prob01(chain, left, right)
        n = chain.num_states
        result = np.zeros(n)
        result[prob1] = 1.0
        unknown = np.nonzero(~prob0 & ~prob1)[0]
        if unknown.size:
            matrix = chain.transition_matrix
            rhs = np.asarray(
                matrix[unknown][:, np.nonzero(prob1)[0]].sum(axis=1)
            ).ravel()
            solution = self.solve_subsystem(chain, unknown, rhs)
            result[unknown] = np.clip(solution, 0.0, 1.0)
        cache.until[key] = result
        return result.copy()

    def reachability_reward(
        self, chain: DTMC, rho: np.ndarray, target: np.ndarray
    ) -> np.ndarray:
        """``R=? [F target]`` with the standard infinity semantics:
        states that do not reach ``target`` almost surely get ``inf``."""
        rho = np.asarray(rho, dtype=np.float64)
        target = np.asarray(target, dtype=bool)
        cache = self._cache(chain)
        key = (rho.tobytes(), _bits(target))
        hit = cache.reach_reward.get(key)
        if hit is not None:
            self.stats.solution_cache_hits += 1
            return hit.copy()

        n = chain.num_states
        reach = self.unbounded_until(chain, np.ones(n, dtype=bool), target)
        finite = reach >= 1.0 - 1e-12
        result = np.full(n, np.inf)
        result[target] = 0.0
        solve_states = np.nonzero(finite & ~target)[0]
        if solve_states.size:
            result[solve_states] = self.solve_subsystem(
                chain, solve_states, rho[solve_states]
            )
        cache.reach_reward[key] = result
        return result.copy()

    # ------------------------------------------------------------------
    # Long-run structure
    # ------------------------------------------------------------------
    def bottom_sccs(self, chain: DTMC) -> List[List[int]]:
        """Memoized BSCC decomposition of ``chain``."""
        cache = self._cache(chain)
        if cache.bsccs is None:
            cache.bsccs = bottom_sccs(chain)
            self.stats.bscc_computations += 1
        else:
            self.stats.bscc_cache_hits += 1
        return cache.bsccs

    def stationary_distribution(
        self, chain: DTMC, assume_irreducible: bool = False
    ) -> np.ndarray:
        """Memoized stationary distribution of an irreducible chain."""
        cache = self._cache(chain)
        if cache.stationary is None:
            cache.stationary = _steady._stationary_impl(
                chain,
                assume_irreducible=assume_irreducible,
                method=self.config.method,
                tolerance=self.config.tolerance,
                max_iterations=self.config.max_iterations,
            )
            self.stats.stationary_computations += 1
        else:
            self.stats.stationary_cache_hits += 1
        return cache.stationary

    def path_sampler(self, chain: DTMC) -> PathSampler:
        """Memoized :class:`~repro.dtmc.simulate.PathSampler`.

        The sampler's Walker alias tables are built once per chain and
        cached alongside the LU/Prob0-Prob1 structure, so statistical
        checks of many properties (or many SMC runs in a sweep) share
        one table build.  The cached sampler is stateless with respect
        to randomness when callers pass explicit generators, as the
        SMC layer does — safe under the sweep runner's threads.
        """
        cache = self._cache(chain)
        if cache.sampler is None:
            cache.sampler = PathSampler(chain)
            self.stats.sampler_builds += 1
        else:
            self.stats.sampler_cache_hits += 1
        return cache.sampler

    def long_run_distribution(self, chain: DTMC) -> np.ndarray:
        """Memoized long-run (limiting average) distribution."""
        cache = self._cache(chain)
        if cache.long_run is None:
            cache.long_run = _steady._long_run_impl(chain, engine=self)
            self.stats.long_run_computations += 1
        else:
            self.stats.long_run_cache_hits += 1
        return cache.long_run

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def count_matvecs(self, count: int) -> None:
        """Record sparse matrix-vector products done on the engine's
        behalf (the transient layer reports its work here)."""
        self.stats.matvecs += int(count)

    def describe(self) -> str:
        """One-line summary for provenance records and logs."""
        s = self.stats
        return (
            f"engine[{self.config.method}] solves={s.solves}"
            f" lu={s.lu_factorizations}(+{s.lu_cache_hits} hits)"
            f" prob01={s.prob01_computations}(+{s.prob01_cache_hits} hits)"
            f" cache_hits={s.cache_hits}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Engine(method={self.config.method!r}, chains={len(self._chains)})"


def default_engine(
    config: Union[SolverConfig, str, None] = None,
    engine: Optional[Engine] = None,
) -> Engine:
    """Resolve the common ``(engine=None, config=None)`` call pattern."""
    if engine is not None:
        if not isinstance(engine, Engine):
            raise TypeError(
                f"engine must be an Engine, got {type(engine).__name__}"
                f" ({engine!r}); pass method names and SolverConfigs via"
                " the config/solver parameter"
            )
        if config is not None:
            raise ValueError("pass either an engine or a config, not both")
        return engine
    return Engine(config)
