"""Solver configuration for the unified numerical engine.

One :class:`SolverConfig` names the linear-algebra backend every
engine-routed solve uses and the accuracy knobs of the iterative
family.  The five methods mirror PRISM's engine choices:

``direct``
    One-shot sparse LU (``scipy.sparse.linalg.spsolve``) per solve;
    nothing is reused.  The seed's historical behaviour.
``lu``
    Sparse LU factorization (``splu``) cached per ``(chain, subsystem)``
    and reused across properties and right-hand sides.  The default.
``power``
    Fixpoint (value) iteration ``x <- A x + b``.
``jacobi``
    Jacobi iteration with the diagonal divided out.
``gauss-seidel``
    In-place Gauss-Seidel sweeps (PRISM's favourite DTMC engine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from ..dtmc.linear import ITERATIVE_METHODS

__all__ = ["SolverConfig", "SmcConfig", "SOLVER_METHODS", "ITERATIVE_METHODS"]

#: Every selectable backend, in documentation order: the direct family
#: plus the fixpoint-iteration family defined by :mod:`repro.dtmc.linear`.
SOLVER_METHODS = ("direct", "lu") + ITERATIVE_METHODS

_ALIASES = {
    "spsolve": "direct",
    "lu-cached": "lu",
    "splu": "lu",
    "value-iteration": "power",
    "gs": "gauss-seidel",
    "gauss_seidel": "gauss-seidel",
}


@dataclass(frozen=True)
class SolverConfig:
    """Backend selection + accuracy knobs for engine-routed solves.

    Parameters
    ----------
    method:
        One of :data:`SOLVER_METHODS` (a few PRISM-style aliases such
        as ``"gs"`` or ``"lu-cached"`` are normalized on construction).
    tolerance:
        Convergence threshold of the iterative methods (max-norm of the
        update step), and of steady-state power iteration.
    max_iterations:
        Iteration cap of the iterative methods; exceeding it raises
        :class:`repro.dtmc.SolverError`.
    """

    method: str = "lu"
    tolerance: float = 1e-12
    max_iterations: int = 1_000_000

    def __post_init__(self) -> None:
        method = _ALIASES.get(self.method, self.method)
        if method not in SOLVER_METHODS:
            raise ValueError(
                f"unknown solver method {self.method!r};"
                f" choose from {', '.join(SOLVER_METHODS)}"
            )
        object.__setattr__(self, "method", method)
        if not (self.tolerance > 0):
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )

    @property
    def is_iterative(self) -> bool:
        return self.method in ITERATIVE_METHODS

    def with_method(self, method: str) -> "SolverConfig":
        """Copy of this config with a different backend."""
        return replace(self, method=method)

    @classmethod
    def coerce(
        cls, config: Union["SolverConfig", str, None]
    ) -> "SolverConfig":
        """Accept a config, a bare method name, or ``None`` (defaults)."""
        if config is None:
            return cls()
        if isinstance(config, str):
            return cls(method=config)
        return config


@dataclass(frozen=True)
class SmcConfig:
    """Accuracy knobs of the statistical checking backends.

    The statistical counterpart of :class:`SolverConfig`: where the
    exact backends trade speed for memory, the statistical ones trade
    wall-clock for guarantee tightness.  ``epsilon``/``delta`` drive
    the APMC (Hoeffding) estimator; ``half_width``/``alpha``/``beta``
    drive the SPRT once a threshold ``theta`` is supplied; ``batch``
    caps per-chunk memory of the fused batched trials.
    """

    epsilon: float = 0.01
    delta: float = 0.05
    half_width: float = 0.01
    alpha: float = 0.01
    beta: float = 0.01
    batch: int = 4096
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        for name in ("epsilon", "delta", "half_width", "alpha", "beta"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0,1), got {value}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")

    @classmethod
    def coerce(cls, config: Optional["SmcConfig"]) -> "SmcConfig":
        """Accept a config or ``None`` (defaults)."""
        return cls() if config is None else config
