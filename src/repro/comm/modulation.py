"""Digital modulation schemes.

The paper's case studies use BPSK (Binary Phase Shift Keying); QPSK is
provided as well because the MIMO detector reference design it builds
on (Han, Erdogan & Arslan 2006) is a QPSK detector, and extension
experiments use it.

Bit convention: **bit 0 maps to -1 and bit 1 maps to +1** (times
``sqrt(Es)``), so ``modulate`` is monotone in the bit value and
``demodulate`` is a sign decision.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["BPSK", "QPSK"]


class BPSK:
    """Binary phase shift keying on the real line: ``{0,1} -> {-a,+a}``."""

    bits_per_symbol = 1

    def __init__(self, symbol_energy: float = 1.0) -> None:
        if symbol_energy <= 0:
            raise ValueError("symbol energy must be positive")
        self.symbol_energy = float(symbol_energy)
        self.amplitude = math.sqrt(symbol_energy)

    def modulate(self, bits: Sequence[int]) -> np.ndarray:
        """Map bits to antipodal real symbols."""
        bits = np.asarray(bits)
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("bits must be 0 or 1")
        return (2.0 * bits - 1.0) * self.amplitude

    def demodulate(self, samples: Sequence[float]) -> np.ndarray:
        """Hard decision by sign (ties resolve to bit 1)."""
        return (np.asarray(samples, dtype=np.float64) >= 0.0).astype(np.int64)

    def constellation(self) -> np.ndarray:
        """All symbols in bit order ``[bit0_symbol, bit1_symbol]``."""
        return np.array([-self.amplitude, self.amplitude])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BPSK(symbol_energy={self.symbol_energy})"


class QPSK:
    """Gray-coded QPSK: two bits per complex symbol on the unit circle.

    Bit pair ``(b0, b1)`` maps to ``(±a ± aj)/sqrt(2)`` with ``b0``
    steering the real part and ``b1`` the imaginary part (Gray coding —
    adjacent symbols differ in one bit).
    """

    bits_per_symbol = 2

    def __init__(self, symbol_energy: float = 1.0) -> None:
        if symbol_energy <= 0:
            raise ValueError("symbol energy must be positive")
        self.symbol_energy = float(symbol_energy)
        self.amplitude = math.sqrt(symbol_energy / 2.0)

    def modulate(self, bits: Sequence[int]) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.size % 2 != 0:
            raise ValueError("QPSK needs an even number of bits")
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("bits must be 0 or 1")
        pairs = bits.reshape(-1, 2)
        real = (2.0 * pairs[:, 0] - 1.0) * self.amplitude
        imag = (2.0 * pairs[:, 1] - 1.0) * self.amplitude
        return real + 1j * imag

    def demodulate(self, samples: Sequence[complex]) -> np.ndarray:
        samples = np.asarray(samples, dtype=np.complex128)
        bits = np.empty((samples.size, 2), dtype=np.int64)
        bits[:, 0] = samples.real >= 0.0
        bits[:, 1] = samples.imag >= 0.0
        return bits.reshape(-1)

    def constellation(self) -> np.ndarray:
        """Symbols indexed by the integer value of the bit pair ``b0 b1``."""
        a = self.amplitude
        return np.array(
            [(-a - 1j * a), (-a + 1j * a), (a - 1j * a), (a + 1j * a)]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QPSK(symbol_energy={self.symbol_energy})"
