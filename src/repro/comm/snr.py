"""Signal-to-noise ratio conventions and conversions.

One convention is used across the whole library (and documented here
once so every module agrees):

* ``snr_db`` always denotes **Es/N0** in decibels — symbol energy over
  one-sided noise spectral density.
* A real AWGN observation is ``r = s + n`` with ``n ~ N(0, N0/2)``; the
  per-real-dimension noise standard deviation is therefore
  ``sigma = sqrt(Es / (2 * snr_linear))``.
* A complex AWGN observation has ``n ~ CN(0, N0)`` — i.e. independent
  real and imaginary parts each ``N(0, N0/2)`` with the *same* sigma.

With BPSK symbols ``±sqrt(Es)`` this yields the textbook
``BER = Q(sqrt(2 * snr_linear))`` (see :mod:`repro.comm.theory`), which
the Monte-Carlo tests cross-check.
"""

from __future__ import annotations

import math

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "noise_sigma",
    "noise_variance",
    "sigma_to_snr_db",
]


def db_to_linear(value_db: float) -> float:
    """Convert a decibel quantity to its linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear ratio to decibels."""
    if value <= 0:
        raise ValueError(f"ratio must be positive, got {value}")
    return 10.0 * math.log10(value)


def noise_variance(snr_db: float, symbol_energy: float = 1.0) -> float:
    """Per-real-dimension noise variance ``N0/2`` for the given Es/N0.

    This is the paper's "for a given SNR, we obtain the variance of the
    Gaussian distribution of noise" step.
    """
    if symbol_energy <= 0:
        raise ValueError(f"symbol energy must be positive, got {symbol_energy}")
    return symbol_energy / (2.0 * db_to_linear(snr_db))


def noise_sigma(snr_db: float, symbol_energy: float = 1.0) -> float:
    """Per-real-dimension noise standard deviation for the given Es/N0."""
    return math.sqrt(noise_variance(snr_db, symbol_energy))


def sigma_to_snr_db(sigma: float, symbol_energy: float = 1.0) -> float:
    """Inverse of :func:`noise_sigma` (useful for reporting)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return linear_to_db(symbol_energy / (2.0 * sigma * sigma))
