"""Uniform quantization with exact Gaussian cell probabilities.

The quantizer is the component that turns the continuous receiver
front-end into a *finite* probabilistic system: the probability that a
received sample ``signal + N(0, sigma^2)`` falls into each quantizer
cell is an exact Gaussian integral, and those probabilities become the
DTMC transition probabilities of the paper's models ("we use this to
calculate the probability of a received sample being mapped to a
particular quantization level").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["UniformQuantizer"]


class UniformQuantizer:
    """Saturating uniform mid-rise quantizer on ``[low, high]``.

    The interval is split into ``num_levels`` equal cells; each cell's
    reconstruction value is its midpoint, and the outermost cells
    extend to ±infinity (saturation), so every real sample maps to some
    level.

    Parameters
    ----------
    num_levels:
        Number of quantization levels (>= 2); an RTL word of ``b`` bits
        gives ``2**b`` levels.
    low / high:
        Edges of the non-saturated range.
    """

    def __init__(self, num_levels: int, low: float, high: float) -> None:
        if num_levels < 2:
            raise ValueError(f"need at least 2 levels, got {num_levels}")
        if not high > low:
            raise ValueError(f"empty quantizer range [{low}, {high}]")
        self.num_levels = int(num_levels)
        self.low = float(low)
        self.high = float(high)
        self.step = (self.high - self.low) / self.num_levels
        # Interior decision thresholds, length num_levels - 1.
        self.thresholds = self.low + self.step * np.arange(1, self.num_levels)
        # Reconstruction values (cell midpoints), length num_levels.
        self.levels = self.low + self.step * (np.arange(self.num_levels) + 0.5)

    @classmethod
    def for_bits(cls, bits: int, low: float, high: float) -> "UniformQuantizer":
        """Quantizer of an RTL word with ``bits`` bits."""
        if bits < 1:
            raise ValueError("need at least 1 bit")
        return cls(2**bits, low, high)

    # ------------------------------------------------------------------
    def quantize_index(self, samples: Sequence[float]) -> np.ndarray:
        """Map samples to level indices ``0 .. num_levels-1`` (vectorized)."""
        samples = np.asarray(samples, dtype=np.float64)
        return np.searchsorted(self.thresholds, samples, side="right")

    def quantize(self, samples: Sequence[float]) -> np.ndarray:
        """Map samples to reconstruction values."""
        return self.levels[self.quantize_index(samples)]

    # ------------------------------------------------------------------
    def cell_probabilities(self, mean: float, sigma: float) -> np.ndarray:
        """P(level i) for a sample ``~ N(mean, sigma^2)``; sums to 1 exactly.

        This is the paper's DTMC-labeling computation: given the
        noiseless signal value ``mean`` and the SNR-derived ``sigma``,
        return the probability of observing each quantization level.
        """
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        cdf = stats.norm.cdf(self.thresholds, loc=mean, scale=sigma)
        upper = np.append(cdf, 1.0)
        lower = np.insert(cdf, 0, 0.0)
        probabilities = upper - lower
        # Guard against round-off: renormalize (error is ~1e-16).
        return probabilities / probabilities.sum()

    def output_distribution(
        self, mean: float, sigma: float, cutoff: float = 0.0
    ) -> list:
        """``(probability, level_value)`` pairs, optionally cutoff-pruned.

        Convenience for building DTMC branches directly.
        """
        probabilities = self.cell_probabilities(mean, sigma)
        pairs = [
            (float(p), float(level))
            for p, level in zip(probabilities, self.levels)
            if p > cutoff
        ]
        total = sum(p for p, _ in pairs)
        return [(p / total, level) for p, level in pairs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniformQuantizer(num_levels={self.num_levels}, low={self.low},"
            f" high={self.high})"
        )
