"""Communication-systems substrate.

Modulation, channels, quantization, SNR conventions, convolutional
encoding, and closed-form BER references — everything the paper's MIMO
RTL case studies assume from the physical layer.
"""

from .channel import (
    AWGNChannel,
    PartialResponseTransmitter,
    RayleighFadingChannel,
    rayleigh_quantized_distribution,
)
from .convolutional import ConvolutionalEncoder
from .modulation import BPSK, QPSK
from .quantizer import UniformQuantizer
from .snr import (
    db_to_linear,
    linear_to_db,
    noise_sigma,
    noise_variance,
    sigma_to_snr_db,
)
from .theory import (
    bpsk_awgn_ber,
    bpsk_diversity_ber,
    bpsk_rayleigh_ber,
    q_function,
    q_function_inverse,
)

__all__ = [
    "AWGNChannel",
    "PartialResponseTransmitter",
    "RayleighFadingChannel",
    "rayleigh_quantized_distribution",
    "ConvolutionalEncoder",
    "BPSK",
    "QPSK",
    "UniformQuantizer",
    "db_to_linear",
    "linear_to_db",
    "noise_sigma",
    "noise_variance",
    "sigma_to_snr_db",
    "bpsk_awgn_ber",
    "bpsk_diversity_ber",
    "bpsk_rayleigh_ber",
    "q_function",
    "q_function_inverse",
]
