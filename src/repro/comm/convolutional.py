"""Binary convolutional encoders.

The paper's transmitter ("output at time step n is obtained by adding
the data bit from the current time step with the data bit from the
previous time step") is the rate-1 partial-response system implemented
in :class:`repro.comm.channel.PartialResponseTransmitter`.  This module
provides the general feed-forward binary convolutional encoder that a
fuller Viterbi deployment decodes, used by the extension examples and
by the trellis-construction tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ConvolutionalEncoder"]


class ConvolutionalEncoder:
    """Feed-forward binary convolutional encoder.

    Parameters
    ----------
    generators:
        Generator polynomials, one per output bit, given as integers in
        binary notation with the LSB weighting the *current* input bit
        (e.g. the standard K=3 rate-1/2 code is ``(0b111, 0b101)``).
    constraint_length:
        Number of input bits each output depends on (K = memory + 1).
    """

    def __init__(self, generators: Sequence[int], constraint_length: int) -> None:
        if constraint_length < 1:
            raise ValueError("constraint length must be >= 1")
        if not generators:
            raise ValueError("need at least one generator polynomial")
        limit = 1 << constraint_length
        for g in generators:
            if not 0 < g < limit:
                raise ValueError(
                    f"generator {g:#b} does not fit constraint length"
                    f" {constraint_length}"
                )
        self.generators = tuple(int(g) for g in generators)
        self.constraint_length = int(constraint_length)

    @property
    def memory(self) -> int:
        return self.constraint_length - 1

    @property
    def num_states(self) -> int:
        return 1 << self.memory

    @property
    def rate(self) -> Tuple[int, int]:
        """Code rate as ``(input bits, output bits)`` per step."""
        return (1, len(self.generators))

    def step(self, state: int, bit: int) -> Tuple[int, Tuple[int, ...]]:
        """One encoder step: ``(new_state, output_bits)``.

        ``state`` holds the previous ``memory`` input bits, most recent
        in the LSB.
        """
        if bit not in (0, 1):
            raise ValueError("input bit must be 0 or 1")
        register = (state << 1) | bit  # constraint_length bits
        outputs = tuple(
            bin(register & g).count("1") & 1 for g in self.generators
        )
        new_state = register & (self.num_states - 1)
        return new_state, outputs

    def encode(self, bits: Sequence[int], terminate: bool = False) -> np.ndarray:
        """Encode a bit sequence (optionally flushing with ``memory`` zeros)."""
        state = 0
        out: List[int] = []
        stream = list(bits) + ([0] * self.memory if terminate else [])
        for bit in stream:
            state, outputs = self.step(state, int(bit))
            out.extend(outputs)
        return np.asarray(out, dtype=np.int64)

    def expected_outputs(self, state: int, bit: int) -> Tuple[float, ...]:
        """BPSK-modulated outputs of a trellis branch (for branch metrics)."""
        _, outputs = self.step(state, bit)
        return tuple(2.0 * b - 1.0 for b in outputs)
