"""Channel models: AWGN, Rayleigh flat fading, and ISI transmitters.

These are the stochastic substrates of both case studies:

* the Viterbi decoder observes a memory-1 **partial-response (ISI)**
  signal through **AWGN** (Section IV-A);
* the MIMO detector observes ``y = Hx + n`` with a **flat-fading
  Rayleigh** channel matrix ``H`` and complex AWGN ``n`` (Section IV-B,
  Eq. 1).

Each channel offers both a *sampling* interface (used by the
Monte-Carlo baseline) and, where meaningful, an *exact distribution*
interface (used to label DTMC transitions).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AWGNChannel",
    "RayleighFadingChannel",
    "PartialResponseTransmitter",
    "rayleigh_quantized_distribution",
]


class AWGNChannel:
    """Additive white Gaussian noise with per-real-dimension ``sigma``.

    ``complex_valued=True`` adds circularly-symmetric complex noise
    (independent N(0, sigma^2) on each of the real and imaginary
    parts), matching the convention in :mod:`repro.comm.snr`.
    """

    def __init__(
        self,
        sigma: float,
        complex_valued: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)
        self.complex_valued = bool(complex_valued)
        self.rng = rng if rng is not None else np.random.default_rng()

    def __call__(self, symbols: Sequence[float]) -> np.ndarray:
        """Transmit ``symbols`` through the channel (adds fresh noise)."""
        symbols = np.asarray(symbols)
        if self.complex_valued:
            noise = self.rng.normal(0.0, self.sigma, symbols.shape) + 1j * (
                self.rng.normal(0.0, self.sigma, symbols.shape)
            )
        else:
            noise = self.rng.normal(0.0, self.sigma, symbols.shape)
        return symbols + noise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "complex" if self.complex_valued else "real"
        return f"AWGNChannel(sigma={self.sigma}, {kind})"


class RayleighFadingChannel:
    """Flat-fading Rayleigh MIMO channel: ``y = H x + n``.

    Entries of ``H`` are i.i.d. ``CN(0, 1)`` (real and imaginary parts
    ``N(0, 1/2)``), so each entry's magnitude is Rayleigh-distributed
    with ``E|h|^2 = 1`` — the normalization the closed-form diversity
    BER in :mod:`repro.comm.theory` assumes.
    """

    def __init__(
        self,
        num_rx: int,
        num_tx: int,
        noise_sigma: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_rx < 1 or num_tx < 1:
            raise ValueError("antenna counts must be >= 1")
        self.num_rx = int(num_rx)
        self.num_tx = int(num_tx)
        self.noise_sigma = float(noise_sigma)
        self.rng = rng if rng is not None else np.random.default_rng()

    def sample_h(self) -> np.ndarray:
        """One channel realization: ``num_rx x num_tx`` complex matrix."""
        scale = math.sqrt(0.5)
        return self.rng.normal(0.0, scale, (self.num_rx, self.num_tx)) + 1j * (
            self.rng.normal(0.0, scale, (self.num_rx, self.num_tx))
        )

    def transmit(self, x: Sequence[complex], h: Optional[np.ndarray] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(y, h)`` for one channel use (fresh ``h`` if not given)."""
        x = np.asarray(x)
        if x.shape != (self.num_tx,):
            raise ValueError(f"x must have shape ({self.num_tx},), got {x.shape}")
        if h is None:
            h = self.sample_h()
        noise = self.rng.normal(0.0, self.noise_sigma, self.num_rx) + 1j * (
            self.rng.normal(0.0, self.noise_sigma, self.num_rx)
        )
        return h @ x + noise, h

    def transmit_block(
        self, x_block: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized transmission of ``n`` uses: ``x_block`` is (n, num_tx).

        A fresh ``H`` is drawn for every use (fast-fading assumption,
        matching the DTMC models where ``H`` is re-drawn each step).
        Returns ``(y_block, h_block)`` with shapes (n, num_rx) and
        (n, num_rx, num_tx).
        """
        x_block = np.asarray(x_block)
        n = x_block.shape[0]
        scale = math.sqrt(0.5)
        h_block = self.rng.normal(0.0, scale, (n, self.num_rx, self.num_tx)) + 1j * (
            self.rng.normal(0.0, scale, (n, self.num_rx, self.num_tx))
        )
        noise = self.rng.normal(0.0, self.noise_sigma, (n, self.num_rx)) + 1j * (
            self.rng.normal(0.0, self.noise_sigma, (n, self.num_rx))
        )
        y_block = np.einsum("nij,nj->ni", h_block, x_block) + noise
        return y_block, h_block


class PartialResponseTransmitter:
    """Memory-``m`` partial-response transmitter (the paper's ISI model).

    The transmitted sample at step ``n`` is the tap-weighted sum of the
    current and previous *modulated* bits::

        t[n] = sum_k taps[k] * bpsk(x[n-k])

    The paper's case study is ``taps = (1, 1)`` (duobinary, memory 1):
    the output alphabet is ``{-2, 0, +2}``.
    """

    def __init__(self, taps: Sequence[float] = (1.0, 1.0)) -> None:
        if len(taps) < 1:
            raise ValueError("need at least one tap")
        self.taps = tuple(float(t) for t in taps)

    @property
    def memory(self) -> int:
        """Channel memory ``m`` (number of past bits involved)."""
        return len(self.taps) - 1

    def output(self, current_and_past_bits: Sequence[int]) -> float:
        """Noiseless output for ``(x[n], x[n-1], ..., x[n-m])``.

        Bits are mapped through BPSK (0 -> -1, 1 -> +1).
        """
        bits = list(current_and_past_bits)
        if len(bits) != len(self.taps):
            raise ValueError(
                f"expected {len(self.taps)} bits (current + memory), got {len(bits)}"
            )
        return sum(
            tap * (2 * bit - 1) for tap, bit in zip(self.taps, bits)
        )

    def alphabet(self) -> List[float]:
        """All possible noiseless outputs, sorted ascending."""
        import itertools

        outputs = {
            self.output(bits)
            for bits in itertools.product((0, 1), repeat=len(self.taps))
        }
        return sorted(outputs)

    def transmit_sequence(self, bits: Sequence[int], initial: int = 0) -> np.ndarray:
        """Noiseless output sequence for a bit stream (past bits start at
        ``initial``)."""
        bits = np.asarray(bits, dtype=np.int64)
        padded = np.concatenate([np.full(self.memory, initial, dtype=np.int64), bits])
        symbols = 2.0 * padded - 1.0
        taps = np.asarray(self.taps)
        out = np.convolve(symbols, taps, mode="full")[
            self.memory : self.memory + bits.size
        ]
        return out


def rayleigh_quantized_distribution(
    quantizer, per_dimension_sigma: float = math.sqrt(0.5)
) -> list:
    """Distribution of one *real dimension* of a CN(0,1) fading entry
    over the given quantizer's levels.

    The real (or imaginary) part of a normalized Rayleigh-fading
    coefficient is ``N(0, 1/2)``; discretizing it through the
    quantizer yields the finite fading alphabet the detector DTMC uses.
    """
    return quantizer.output_distribution(0.0, per_dimension_sigma)
