"""Closed-form performance references from communication theory.

Used as independent oracles in tests and experiments: the model-checked
and simulated BERs must agree with these formulas in the regimes where
the formulas are exact (no quantization, ML detection).

References: Proakis & Salehi, *Communication Systems Engineering*
(the paper's reference [15]).
"""

from __future__ import annotations

import math
from math import comb

from .snr import db_to_linear

__all__ = [
    "q_function",
    "q_function_inverse",
    "bpsk_awgn_ber",
    "bpsk_rayleigh_ber",
    "bpsk_diversity_ber",
]


def q_function(x: float) -> float:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def q_function_inverse(p: float, tolerance: float = 1e-12) -> float:
    """Inverse Q-function by bisection (monotone, well-conditioned)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0,1), got {p}")
    lo, hi = -40.0, 40.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if q_function(mid) > p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bpsk_awgn_ber(snr_db: float) -> float:
    """Exact BPSK bit error rate over AWGN: ``Q(sqrt(2 Es/N0))``."""
    return q_function(math.sqrt(2.0 * db_to_linear(snr_db)))


def bpsk_rayleigh_ber(snr_db: float) -> float:
    """Average BPSK BER over flat Rayleigh fading (single branch).

    ``P = (1 - sqrt(g/(1+g))) / 2`` with ``g`` the average Es/N0.
    """
    g = db_to_linear(snr_db)
    return 0.5 * (1.0 - math.sqrt(g / (1.0 + g)))


def bpsk_diversity_ber(snr_db: float, branches: int) -> float:
    """BPSK BER with L-branch maximal-ratio combining over Rayleigh fading.

    Proakis' closed form::

        mu = sqrt(g / (1 + g))
        P  = ((1-mu)/2)^L * sum_{k=0}^{L-1} C(L-1+k, k) ((1+mu)/2)^k

    ``g`` is the average Es/N0 *per branch*.  The 1xN ML detector of
    the paper's Table V is exactly MRC for BPSK, so this is its
    unquantized reference curve.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    g = db_to_linear(snr_db)
    mu = math.sqrt(g / (1.0 + g))
    down = (1.0 - mu) / 2.0
    up = (1.0 + mu) / 2.0
    total = sum(comb(branches - 1 + k, k) * up**k for k in range(branches))
    return down**branches * total
