"""Interoperability with external tools (PRISM explicit formats and
language source)."""

from .prism import (
    from_prism_explicit,
    module_to_prism,
    render_expr,
    to_prism_lab,
    to_prism_srew,
    to_prism_tra,
    write_prism_files,
)

__all__ = [
    "from_prism_explicit",
    "module_to_prism",
    "render_expr",
    "to_prism_lab",
    "to_prism_srew",
    "to_prism_tra",
    "write_prism_files",
]
