"""Interoperability with PRISM, the paper's model checker.

Two bridges:

* **Explicit-state files** — export any :class:`~repro.dtmc.chain.DTMC`
  to PRISM's documented explicit import format (``.tra`` transition
  list, ``.lab`` label file, ``.srew`` state rewards) and re-import it.
  This lets a user with a real PRISM installation re-check any model
  this library builds (``prism -importtrans m.tra -importlabels m.lab
  ...``), closing the loop with the paper's actual tool.
* **Language source** — render a :class:`~repro.prog.model.Module` as a
  PRISM-language ``dtmc`` model, so guarded-command models written with
  :mod:`repro.prog` can be opened in the PRISM GUI unchanged.

The exporters and the importer are exact inverses on the supported
fragment, which the test suite verifies by round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np
from scipy import sparse

from ..dtmc.chain import DTMC
from ..prog.expr import BinOp, Const, Expr, Ite, UnaryOp, Var
from ..prog.model import Module

__all__ = [
    "to_prism_tra",
    "to_prism_lab",
    "to_prism_srew",
    "from_prism_explicit",
    "write_prism_files",
    "module_to_prism",
    "render_expr",
]


# ----------------------------------------------------------------------
# Explicit-state export
# ----------------------------------------------------------------------
def to_prism_tra(chain: DTMC) -> str:
    """Render the transition matrix in PRISM ``.tra`` format.

    First line: ``<states> <transitions>``; then one ``src dst prob``
    line per transition, row-major.
    """
    matrix = chain.transition_matrix.tocoo()
    lines = [f"{chain.num_states} {matrix.nnz}"]
    order = np.lexsort((matrix.col, matrix.row))
    for k in order:
        lines.append(
            f"{int(matrix.row[k])} {int(matrix.col[k])} {float(matrix.data[k])!r}"
        )
    return "\n".join(lines) + "\n"


def to_prism_lab(chain: DTMC) -> str:
    """Render labels in PRISM ``.lab`` format.

    Header line assigns ids to label names (``init`` is id 0, as PRISM
    requires); body lines are ``state: id id ...`` for states with at
    least one label.
    """
    names = sorted(chain.labels)
    header_parts = ['0="init"'] + [
        f'{i + 1}="{name}"' for i, name in enumerate(names)
    ]
    lines = [" ".join(header_parts)]
    initial = set(chain.initial_states())
    for state in range(chain.num_states):
        ids: List[int] = []
        if state in initial:
            ids.append(0)
        for i, name in enumerate(names):
            if chain.labels[name][state]:
                ids.append(i + 1)
        if ids:
            lines.append(f"{state}: " + " ".join(str(i) for i in ids))
    return "\n".join(lines) + "\n"


def to_prism_srew(chain: DTMC, reward: str) -> str:
    """Render one state-reward structure in PRISM ``.srew`` format.

    First line: ``<states> <nonzero lines>``; then ``state reward``.
    """
    vector = chain.reward_vector(reward)
    nonzero = [
        (state, value) for state, value in enumerate(vector) if value != 0.0
    ]
    lines = [f"{chain.num_states} {len(nonzero)}"]
    for state, value in nonzero:
        lines.append(f"{state} {float(value)!r}")
    return "\n".join(lines) + "\n"


def write_prism_files(
    chain: DTMC, basename: str, rewards: Optional[List[str]] = None
) -> List[str]:
    """Write ``.tra``/``.lab`` (+ one ``.srew`` per reward) files.

    Returns the list of paths written.  ``rewards`` defaults to all of
    the chain's reward structures.
    """
    paths = []
    tra_path = f"{basename}.tra"
    with open(tra_path, "w") as handle:
        handle.write(to_prism_tra(chain))
    paths.append(tra_path)
    lab_path = f"{basename}.lab"
    with open(lab_path, "w") as handle:
        handle.write(to_prism_lab(chain))
    paths.append(lab_path)
    for name in rewards if rewards is not None else sorted(chain.rewards):
        srew_path = f"{basename}.{name}.srew"
        with open(srew_path, "w") as handle:
            handle.write(to_prism_srew(chain, name))
        paths.append(srew_path)
    return paths


# ----------------------------------------------------------------------
# Explicit-state import
# ----------------------------------------------------------------------
def from_prism_explicit(
    tra_text: str,
    lab_text: Optional[str] = None,
    srew_texts: Optional[Mapping[str, str]] = None,
) -> DTMC:
    """Parse PRISM explicit files back into a :class:`DTMC`.

    The initial state is taken from the ``init`` label (uniform over
    all init-labeled states); defaults to state 0 when no label file is
    given.
    """
    tra_lines = [line for line in tra_text.splitlines() if line.strip()]
    header = tra_lines[0].split()
    num_states, num_transitions = int(header[0]), int(header[1])
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for line in tra_lines[1 : 1 + num_transitions]:
        src, dst, prob = line.split()
        rows.append(int(src))
        cols.append(int(dst))
        vals.append(float(prob))
    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(num_states, num_states)
    )

    labels: Dict[str, np.ndarray] = {}
    init_states = [0]
    if lab_text is not None:
        lab_lines = [line for line in lab_text.splitlines() if line.strip()]
        id_to_name: Dict[int, str] = {}
        for part in lab_lines[0].split():
            label_id, quoted = part.split("=")
            id_to_name[int(label_id)] = quoted.strip('"')
        vectors = {
            name: np.zeros(num_states, dtype=bool)
            for name in id_to_name.values()
        }
        for line in lab_lines[1:]:
            state_text, ids_text = line.split(":")
            state = int(state_text)
            for label_id in ids_text.split():
                vectors[id_to_name[int(label_id)]][state] = True
        init_vector = vectors.pop("init", None)
        if init_vector is not None and init_vector.any():
            init_states = np.nonzero(init_vector)[0].tolist()
        labels = vectors

    initial = np.zeros(num_states)
    initial[init_states] = 1.0 / len(init_states)

    rewards: Dict[str, np.ndarray] = {}
    for name, text in (srew_texts or {}).items():
        srew_lines = [line for line in text.splitlines() if line.strip()]
        vector = np.zeros(num_states)
        for line in srew_lines[1:]:
            state, value = line.split()
            vector[int(state)] = float(value)
        rewards[name] = vector

    return DTMC(matrix, initial, labels=labels, rewards=rewards)


# ----------------------------------------------------------------------
# Guarded-command language export
# ----------------------------------------------------------------------
_PRISM_BINOP = {
    "+": "+",
    "-": "-",
    "*": "*",
    "=": "=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "&": "&",
    "|": "|",
}


def render_expr(expr: Expr) -> str:
    """Render an expression tree in PRISM's expression syntax."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        return repr(value)
    if isinstance(expr, Ite):
        return (
            f"({render_expr(expr.condition)} ? {render_expr(expr.then)}"
            f" : {render_expr(expr.otherwise)})"
        )
    if isinstance(expr, UnaryOp):
        if expr.symbol == "!":
            return f"!({render_expr(expr.operand)})"
        raise ValueError(f"cannot render unary operator {expr.symbol!r}")
    if isinstance(expr, BinOp):
        if expr.symbol in ("min", "max"):
            return (
                f"{expr.symbol}({render_expr(expr.left)},"
                f" {render_expr(expr.right)})"
            )
        symbol = _PRISM_BINOP.get(expr.symbol)
        if symbol is None:
            raise ValueError(f"cannot render operator {expr.symbol!r}")
        return f"({render_expr(expr.left)} {symbol} {render_expr(expr.right)})"
    raise ValueError(f"cannot render expression {expr!r}")


def module_to_prism(module: Module) -> str:
    """Render a :class:`Module` as PRISM-language source.

    Integer variables become ranged ``[lo..hi]`` declarations; boolean
    variables become ``bool``.  Enumerated domains must be contiguous
    integers (PRISM has no enum type).
    """
    lines = ["dtmc", "", f"module {module.name}"]
    for decl in module.variables.values():
        if set(decl.domain) == {False, True}:
            init = "true" if decl.init else "false"
            lines.append(f"  {decl.name} : bool init {init};")
            continue
        values = sorted(decl.domain)
        contiguous = all(
            isinstance(v, int) and v == values[0] + i
            for i, v in enumerate(values)
        )
        if not contiguous:
            raise ValueError(
                f"variable {decl.name!r} has a non-contiguous domain;"
                " PRISM needs [lo..hi]"
            )
        lines.append(
            f"  {decl.name} : [{values[0]}..{values[-1]}] init {decl.init};"
        )
    lines.append("")
    for command in module.commands:
        updates = []
        for probability, assignment in command.updates:
            if assignment:
                effects = " & ".join(
                    f"({name}'={render_expr(expr)})"
                    for name, expr in assignment.items()
                )
            else:
                effects = "true"
            updates.append(f"{render_expr(probability)} : {effects}")
        label = f"// {command.label}" if command.label else ""
        lines.append(
            f"  [] {render_expr(command.guard)} -> "
            + " + ".join(updates)
            + f"; {label}".rstrip()
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
