"""Guarantee service layer: the persistent check-result store.

One sqlite file turns :func:`repro.engine.sweep_check` (and the zoo
sweeps built on it) into a serving layer: every checked point is
banked with full provenance, repeated queries are cache hits, and
concurrent writer threads/processes share the file safely (WAL +
upsert).  See :mod:`repro.store.result_store` for the cache-key
contract.

>>> from repro import zoo
>>> from repro.store import ResultStore
>>> import tempfile, os
>>> store = ResultStore(os.path.join(tempfile.mkdtemp(), "g.sqlite"))
>>> cold = zoo.sweep("birth-death", {"n": [8, 12]}, "P=? [ F<=50 goal ]",
...                  store=store, executor="serial")
>>> warm = zoo.sweep("birth-death", {"n": [8, 12]}, "P=? [ F<=50 goal ]",
...                  store=store, executor="serial")
>>> [r.cached for r in cold], [r.cached for r in warm]
([False, False], [True, True])
>>> [r.value for r in warm] == [r.value for r in cold]
True
"""

from .history import (
    DRIFT_TOLERANCE,
    DiffEntry,
    HistoryPoint,
    SaltDiff,
    metric_of,
    relative_drift,
)
from .result_store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    StoreStats,
    StoredResult,
    canonical,
    check_fingerprint,
    decode_value,
    encode_value,
    make_key,
    read_through,
)

__all__ = [
    "DRIFT_TOLERANCE",
    "DiffEntry",
    "HistoryPoint",
    "SCHEMA_VERSION",
    "ResultStore",
    "SaltDiff",
    "StoreError",
    "StoreStats",
    "StoredResult",
    "canonical",
    "check_fingerprint",
    "encode_value",
    "decode_value",
    "make_key",
    "metric_of",
    "read_through",
    "relative_drift",
]
