"""Cross-salt history types: how one guarantee moved across versions.

The store's cache-key contract makes the ``salt`` the code/version
axis: every row is banked under the salt its store was opened with, so
one sqlite file accumulates the *same* logical guarantee — identical
``(scenario, formula, backend, config)`` — once per code version.
This module is the vocabulary for reading that axis back:

* :class:`HistoryPoint` — one banked value of one guarantee under one
  salt, in insertion order (what :meth:`ResultStore.history` returns);
* :class:`DiffEntry` / :class:`SaltDiff` — the classified comparison
  of two salts' rows (what :meth:`ResultStore.compare` returns): each
  shared logical key is ``unchanged``, ``drifted`` (relative change
  beyond a tolerance), ``appeared`` or ``vanished``.

Pure data + classification logic; the SQL lives in
:mod:`repro.store.result_store` and the trend analytics built on top
in :mod:`repro.history`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DRIFT_TOLERANCE",
    "HistoryPoint",
    "DiffEntry",
    "SaltDiff",
    "metric_of",
    "relative_drift",
    "classify_pair",
]

#: Default relative tolerance separating float round-off from a real
#: drift — generous enough for cross-platform linear-algebra noise,
#: tight enough to flag any re-tuned constant or changed seed stream.
DRIFT_TOLERANCE = 1e-6


def metric_of(value: Any) -> Optional[float]:
    """The comparable number inside one stored check value.

    Mirrors :func:`repro.resilience.validate.numeric_value`: bare
    numbers pass through, ``Guarantee.value`` / ``ApmcResult.estimate``
    unwrap duck-typed, SPRT verdicts compare as 0/1.  ``None`` means
    the value has no scalar to trend (it then only ever compares equal
    or changed, never "drifted by x%").
    """
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    for attribute in ("estimate", "value", "accept"):
        inner = getattr(value, attribute, None)
        if isinstance(inner, (bool, int, float)):
            return float(inner)
    return None


def relative_drift(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Relative change from ``a`` to ``b``; ``None`` when incomparable.

    ``|b - a| / max(|a|, |b|)`` — symmetric, defined at zero (two
    zeros drift by 0.0), and scale-free so BERs at 1e-9 and
    probabilities at 0.99 share one tolerance.
    """
    if a is None or b is None:
        return None
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(b - a) / scale


@dataclass
class HistoryPoint:
    """One banked value of one logical guarantee under one salt.

    The row's provenance travels with it — ``seconds`` is the original
    compute time, ``samples`` the statistical sample count, and
    ``warnings`` the :class:`~repro.resilience.ValidationWarning`
    records the value was flagged with when it was banked.
    """

    salt: str
    value: Any
    seconds: float
    samples: int
    created: float
    config: Any = None
    key: str = ""
    warnings: Tuple[Any, ...] = ()

    @property
    def metric(self) -> Optional[float]:
        """The trendable scalar inside :attr:`value` (see :func:`metric_of`)."""
        return metric_of(self.value)

    @property
    def flagged(self) -> bool:
        """True when the banked value carried validation warnings."""
        return bool(self.warnings or getattr(self.value, "warnings", ()))

    def describe(self) -> str:
        """One human line: salt, metric, provenance."""
        metric = self.metric
        shown = f"{metric:.6g}" if metric is not None else repr(self.value)
        flags = f"  !! {len(self.warnings)} warning(s)" if self.warnings else ""
        return (
            f"{self.salt}: {shown}"
            f"  ({self.seconds:.3f}s, {self.samples} samples){flags}"
        )


def classify_pair(
    value_a: Any, value_b: Any, tolerance: float = DRIFT_TOLERANCE
) -> Tuple[str, Optional[float]]:
    """``("unchanged" | "drifted", relative drift)`` for two values.

    Numeric values (after :func:`metric_of` unwrapping) drift when the
    relative change exceeds ``tolerance``; non-numeric values compare
    by equality of their store encoding and drift with ``None`` as the
    magnitude.
    """
    drift = relative_drift(metric_of(value_a), metric_of(value_b))
    if drift is not None:
        return ("drifted" if drift > tolerance else "unchanged"), drift
    from .result_store import encode_value

    try:
        same = encode_value(value_a) == encode_value(value_b)
    except Exception:  # noqa: BLE001 - unencodable: fall back to ==
        same = value_a == value_b
    return ("unchanged" if same else "drifted"), None


@dataclass
class DiffEntry:
    """One logical guarantee's fate between two salts.

    ``status`` is ``"unchanged"``, ``"drifted"``, ``"appeared"`` (only
    under the second salt) or ``"vanished"`` (only under the first);
    ``drift`` is the relative change for numeric drifts, else ``None``.
    """

    scenario: Any
    formula: str
    backend: str
    config: Any
    status: str
    family: Optional[str] = None
    value_a: Any = None
    value_b: Any = None
    drift: Optional[float] = None

    def describe(self) -> str:
        """One human line: identity, status, and the values involved."""
        ident = f"{self.family or '?'} {json.dumps(self.scenario, default=repr)}"
        ident += f" {self.formula!r} [{self.backend}]"
        if self.status == "drifted":
            shown = (
                f"{self.drift:.3%}" if self.drift is not None else "non-numeric"
            )
            return (
                f"DRIFT  {ident}: {_short(self.value_a)} -> "
                f"{_short(self.value_b)} ({shown})"
            )
        if self.status == "appeared":
            return f"NEW    {ident}: {_short(self.value_b)}"
        if self.status == "vanished":
            return f"GONE   {ident}: {_short(self.value_a)}"
        return f"same   {ident}: {_short(self.value_a)}"


def _short(value: Any) -> str:
    metric = metric_of(value)
    return f"{metric:.6g}" if metric is not None else repr(value)


@dataclass
class SaltDiff:
    """Classified comparison of every row under two salts.

    Produced by :meth:`repro.store.ResultStore.compare`; the four
    lists partition the union of both salts' logical keys.
    """

    salt_a: str
    salt_b: str
    tolerance: float
    unchanged: List[DiffEntry] = field(default_factory=list)
    drifted: List[DiffEntry] = field(default_factory=list)
    appeared: List[DiffEntry] = field(default_factory=list)
    vanished: List[DiffEntry] = field(default_factory=list)

    @property
    def entries(self) -> List[DiffEntry]:
        """Every entry, drifts first (the ones a reader acts on)."""
        return self.drifted + self.appeared + self.vanished + self.unchanged

    @property
    def has_drift(self) -> bool:
        """True when any shared guarantee moved beyond the tolerance."""
        return bool(self.drifted)

    @property
    def max_drift(self) -> float:
        """Largest relative drift among the drifted entries (0.0 if none)."""
        drifts = [e.drift for e in self.drifted if e.drift is not None]
        return max(drifts, default=0.0)

    def describe(self) -> str:
        """Multi-line report: header, counts, then one line per entry."""
        lines = [
            f"diff {self.salt_a!r} -> {self.salt_b!r}"
            f" (tolerance {self.tolerance:g}):"
            f" {len(self.drifted)} drifted, {len(self.appeared)} appeared,"
            f" {len(self.vanished)} vanished, {len(self.unchanged)} unchanged"
        ]
        lines.extend(entry.describe() for entry in self.entries)
        return "\n".join(lines)
