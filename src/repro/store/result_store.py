"""Persistent guarantee store: sqlite-backed check-result caching.

The paper's pitch is *cheap, repeatable* statistical guarantees — and
repeatable means a second query for the same guarantee should be a
cache hit, not a solve.  :class:`ResultStore` is that cache: one
sqlite file (stdlib only) holding every checked sweep point with full
provenance, shared safely between concurrent writer threads and
processes (WAL journal + upsert writes).

Cache-key contract
------------------
A stored row is addressed by the SHA-256 of the canonical JSON of::

    [salt, scenario, formula, backend, config]

* ``salt`` — the code/version salt (default ``repro/<version>/store-v<schema>``);
  bumping the package version invalidates every cached result.
* ``scenario`` — the JSON-able scenario identity.  ``zoo.sweep`` uses
  ``ScenarioSpec.key()`` over the *fully merged* parameters plus the
  ``reduce`` flag, so ``points=[{}]`` and the spelled-out defaults hit
  the same row.
* ``formula`` — the pCTL property string, verbatim.
* ``backend`` — ``"exact"`` / ``"apmc"`` / ``"sprt"``.
* ``config`` — the backend fingerprint from :func:`check_fingerprint`:
  solver method + tolerances for exact runs, ``(epsilon, delta, batch,
  seed)`` for APMC, ``(theta, half_width, alpha, beta, seed)`` for
  SPRT.  Any change — including the seed — is a different key.

Values round-trip exactly: floats are stored via JSON's repr-based
encoding (bit-exact), and the result dataclasses (:class:`ApmcResult`,
:class:`SprtResult`, :class:`~repro.core.Guarantee`) are encoded
field-by-field and rebuilt on read, so a warm sweep returns objects
equal to the cold run's.

The store pickles by *location* (path, salt, timeout), not by
connection: each unpickled copy — e.g. one per
``ProcessPoolExecutor`` worker in a sharded survey — reopens its own
connection lazily, which is exactly the safe way to share sqlite
across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.analyzer import Guarantee
from ..engine.config import SmcConfig, SolverConfig
from ..smc.hoeffding import ApmcResult
from ..smc.sprt import SprtResult
from .history import (
    DRIFT_TOLERANCE,
    DiffEntry,
    HistoryPoint,
    SaltDiff,
    classify_pair,
)

__all__ = [
    "SCHEMA_VERSION",
    "StoreError",
    "StoredResult",
    "StoreStats",
    "ResultStore",
    "canonical",
    "make_key",
    "check_fingerprint",
    "encode_value",
    "decode_value",
    "read_through",
]

#: Bumped whenever the row schema or the value encoding changes; part
#: of the default salt, so stale stores never serve mis-shaped rows.
#: v2 added the queryable ``salt`` column (survey history over
#: versions); v1 files are migrated in place on first open.
SCHEMA_VERSION = 2


class StoreError(Exception):
    """A result-store operation failed (bad key, bad payload, ...)."""


def _default_salt() -> str:
    from .. import __version__  # deferred: repro/__init__ imports this module

    return f"repro/{__version__}/store-v{SCHEMA_VERSION}"


def _json_default(obj: Any) -> Any:
    # numpy scalars/arrays appear in grid points and check values; they
    # canonicalize to their Python equivalents.  Anything else is an
    # error — a repr() fallback would silently change between processes
    # and turn every warm lookup into a miss.
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep
        np = None
    if np is not None:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    raise StoreError(
        f"cannot canonicalize {type(obj).__name__!r} for a store key;"
        " scenario identities and configs must be JSON-able"
    )


def canonical(obj: Any) -> str:
    """Deterministic JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def make_key(
    salt: str, scenario: Any, formula: str, backend: str, config: Any
) -> str:
    """SHA-256 hex digest of the canonical cache-key tuple."""
    text = canonical([salt, scenario, formula, backend, config])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def check_fingerprint(
    backend: str,
    *,
    smc: Optional[SmcConfig] = None,
    solver: Any = None,
    theta: Optional[float] = None,
) -> Dict[str, Any]:
    """The backend-config part of the cache key.

    Exactly the knobs that change a checked number: the solver method
    and tolerances for ``"exact"``, the Hoeffding accuracy + seed for
    ``"apmc"``, the SPRT error rates + threshold + seed for ``"sprt"``.
    """
    if backend == "exact":
        cfg = SolverConfig.coerce(solver)
        return {
            "backend": "exact",
            "method": cfg.method,
            "tolerance": cfg.tolerance,
            "max_iterations": cfg.max_iterations,
        }
    cfg = SmcConfig.coerce(smc)
    if backend == "apmc":
        return {
            "backend": "apmc",
            "epsilon": cfg.epsilon,
            "delta": cfg.delta,
            "batch": cfg.batch,
            "seed": cfg.seed,
        }
    if backend == "sprt":
        return {
            "backend": "sprt",
            "theta": theta,
            "half_width": cfg.half_width,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "seed": cfg.seed,
        }
    raise StoreError(f"unknown checking backend {backend!r}")


# ----------------------------------------------------------------------
# Value encoding: tagged JSON, dataclasses rebuilt field-by-field.
# ----------------------------------------------------------------------

#: Result dataclasses the store round-trips losslessly.
_VALUE_TYPES: Dict[str, type] = {
    "apmc": ApmcResult,
    "sprt": SprtResult,
    "guarantee": Guarantee,
}


def encode_value(value: Any) -> str:
    """Tagged-JSON text of one storable check value.

    The store's own row payload encoding, public because the service
    wire protocol (:mod:`repro.service.wire`) ships check results in
    exactly this form — a value computed on a remote worker round-trips
    through the same codec a local sweep banks with, so remote results
    are bit-compatible with warm store hits.
    """
    import numpy as np

    if isinstance(value, np.integer):
        value = int(value)
    elif isinstance(value, np.floating):
        value = float(value)
    elif isinstance(value, np.bool_):
        value = bool(value)
    for tag, cls in _VALUE_TYPES.items():
        if isinstance(value, cls):
            return json.dumps({"kind": tag, "data": asdict(value)})
    if value is None or isinstance(value, (bool, int, float, str, list, dict)):
        return json.dumps({"kind": "json", "data": value})
    raise StoreError(
        f"cannot store a value of type {type(value).__name__!r};"
        f" supported: json scalars/containers,"
        f" {', '.join(c.__name__ for c in _VALUE_TYPES.values())}"
    )


def decode_value(payload: str) -> Any:
    """Inverse of :func:`encode_value`."""
    wrapped = json.loads(payload)
    kind = wrapped["kind"]
    if kind == "json":
        return wrapped["data"]
    cls = _VALUE_TYPES.get(kind)
    if cls is None:
        raise StoreError(f"unknown stored value kind {kind!r}")
    data = wrapped["data"]
    names = {f.name for f in fields(cls)}
    data = {k: v for k, v in data.items() if k in names}
    # Validation warnings are nested dataclasses: JSON flattens them to
    # dicts, so rebuild the records for a bit-equal warm round-trip.
    if data.get("warnings"):
        from ..resilience.validate import ValidationWarning

        data["warnings"] = tuple(
            ValidationWarning(**w) if isinstance(w, dict) else w
            for w in data["warnings"]
        )
    elif "warnings" in data:
        data["warnings"] = ()
    return cls(**data)


@dataclass
class StoredResult:
    """One cached check result with its provenance."""

    key: str
    scenario: Any
    family: Optional[str]
    formula: str
    backend: str
    config: Any
    value: Any
    seconds: float
    samples: int
    extra: Dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    updated: float = 0.0
    hits: int = 0
    salt: str = ""

    def describe(self) -> str:
        """One human-readable block: identity, salt, value, provenance."""
        value = self.value
        shown = f"{value:.6g}" if isinstance(value, float) else repr(value)
        return (
            f"{self.family or '?'} {canonical(self.scenario)}\n"
            f"  formula: {self.formula}   backend: {self.backend}\n"
            f"  salt: {self.salt or '?'}   key: {self.key[:16]}...\n"
            f"  value: {shown}   ({self.seconds:.3f}s,"
            f" {self.samples} samples, {self.hits} hits served)"
        )


@dataclass
class StoreStats:
    """Aggregate view of one store file (the ``store stats`` CLI)."""

    path: str
    salt: str
    entries: int
    families: Dict[str, int]
    backends: Dict[str, int]
    compute_seconds: float
    total_hits: int
    db_bytes: int
    schema_version: int = SCHEMA_VERSION
    salts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line summary (printed verbatim by ``store stats``)."""
        fams = ", ".join(f"{k}={v}" for k, v in sorted(self.families.items()))
        backs = ", ".join(f"{k}={v}" for k, v in sorted(self.backends.items()))
        per_salt = ", ".join(
            f"{k or '?'}={v}" for k, v in sorted(self.salts.items())
        )
        return (
            f"store: {self.path} (salt {self.salt})\n"
            f"schema: v{self.schema_version}\n"
            f"entries: {self.entries}   hits served: {self.total_hits}\n"
            f"rows per salt: {per_salt or '-'}\n"
            f"families: {fams or '-'}\n"
            f"backends: {backs or '-'}\n"
            f"compute seconds banked: {self.compute_seconds:.3f}\n"
            f"db size: {self.db_bytes / 1024:.1f} KiB"
        )


_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key      TEXT PRIMARY KEY,
    scenario TEXT NOT NULL,
    family   TEXT,
    formula  TEXT NOT NULL,
    backend  TEXT NOT NULL,
    config   TEXT NOT NULL,
    payload  TEXT NOT NULL,
    seconds  REAL NOT NULL,
    samples  INTEGER NOT NULL DEFAULT 0,
    extra    TEXT NOT NULL DEFAULT '{}',
    created  REAL NOT NULL,
    updated  REAL NOT NULL,
    hits     INTEGER NOT NULL DEFAULT 0,
    salt     TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_results_family ON results (family);
CREATE INDEX IF NOT EXISTS idx_results_backend ON results (backend);
"""

#: Explicit row column order for every SELECT — robust against the
#: v1 -> v2 migration appending ``salt`` after ``hits``.
_COLUMNS = (
    "key, scenario, family, formula, backend, config, payload,"
    " seconds, samples, extra, created, updated, hits, salt"
)


class ResultStore:
    """Persistent, concurrency-safe cache of checked sweep results.

    Parameters
    ----------
    path:
        Filesystem path of the sqlite database (created on first use;
        parent directories are not created).
    salt:
        Code/version salt mixed into every key; defaults to
        ``repro/<version>/store-v<schema>``, so upgrading the package
        or the store schema invalidates the cache wholesale.
    timeout:
        sqlite busy timeout in seconds — how long a writer waits for a
        concurrent writer's transaction before giving up.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "results.sqlite")
    >>> store = ResultStore(path)
    >>> key = store.put({"n": 8}, "P=? [ F<=10 goal ]", 0.125)
    >>> store.get({"n": 8}, "P=? [ F<=10 goal ]").value
    0.125
    >>> store.get({"n": 9}, "P=? [ F<=10 goal ]") is None
    True
    """

    def __init__(
        self,
        path: "os.PathLike[str] | str",
        *,
        salt: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.path = os.fspath(path)
        self.salt = salt if salt is not None else _default_salt()
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection lifecycle -------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self.timeout, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            # v1 -> v2 migration: older files lack the salt column the
            # history queries group by.  Backfilled rows keep '' — their
            # keys were hashed under a v1 default salt anyway, so they
            # are history-visible but never served as warm hits.
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(results)")
            }
            if "salt" not in columns:
                conn.execute(
                    "ALTER TABLE results ADD COLUMN salt TEXT NOT NULL DEFAULT ''"
                )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_salt ON results (salt)"
            )
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the sqlite connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # Pickle by location, never by live connection: each worker process
    # of a sharded sweep reopens the file itself.
    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "salt": self.salt, "timeout": self.timeout}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.salt = state["salt"]
        self.timeout = state["timeout"]
        self._lock = threading.Lock()
        self._conn = None

    # -- core API -------------------------------------------------------------

    def key_for(
        self, scenario: Any, formula: str, backend: str = "exact", config: Any = None
    ) -> str:
        """The row key this store uses for one logical query."""
        return make_key(self.salt, scenario, formula, backend, config or {})

    def put(
        self,
        scenario: Any,
        formula: str,
        value: Any,
        *,
        backend: str = "exact",
        config: Any = None,
        seconds: float = 0.0,
        family: Optional[str] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Upsert one result; returns its key.

        ``samples`` provenance is lifted off the value when it carries
        a ``samples`` attribute (APMC/SPRT results, ``Guarantee``).
        Concurrent writers race safely: last writer wins the row.
        """
        extra_dict = dict(extra or {})
        if family is None:
            family = extra_dict.get("family")
        key = self.key_for(scenario, formula, backend, config)
        payload = encode_value(value)
        samples = int(getattr(value, "samples", 0) or 0)
        now = time.time()
        with self._lock:
            conn = self._connection()
            conn.execute(
                """
                INSERT INTO results
                    (key, scenario, family, formula, backend, config,
                     payload, seconds, samples, extra, created, updated,
                     hits, salt)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?)
                ON CONFLICT(key) DO UPDATE SET
                    payload = excluded.payload,
                    seconds = excluded.seconds,
                    samples = excluded.samples,
                    extra = excluded.extra,
                    updated = excluded.updated,
                    salt = excluded.salt
                """,
                (
                    key,
                    canonical(scenario),
                    family,
                    formula,
                    backend,
                    canonical(config or {}),
                    payload,
                    float(seconds),
                    samples,
                    json.dumps(extra_dict, sort_keys=True),
                    now,
                    now,
                    self.salt,
                ),
            )
            conn.commit()
        return key

    def get(
        self,
        scenario: Any,
        formula: str,
        backend: str = "exact",
        config: Any = None,
    ) -> Optional[StoredResult]:
        """Fetch one cached result, or ``None`` on a miss.

        Hits bump the row's persistent ``hits`` counter (the ``store
        stats`` "hits served" figure).
        """
        results = self.get_many([(scenario, formula, backend, config)])
        return results[0]

    def get_many(
        self, queries: Sequence[Tuple[Any, str, str, Any]]
    ) -> List[Optional[StoredResult]]:
        """Batched :meth:`get`: one SELECT for a whole sweep grid.

        ``queries`` is a sequence of ``(scenario, formula, backend,
        config)`` tuples; the result list is parallel to it, ``None``
        where the store misses.
        """
        if not queries:
            return []
        keys = [
            self.key_for(scenario, formula, backend, config)
            for scenario, formula, backend, config in queries
        ]
        marks = ",".join("?" * len(set(keys)))
        unique = list(dict.fromkeys(keys))
        with self._lock:
            conn = self._connection()
            rows = conn.execute(
                f"SELECT {_COLUMNS} FROM results WHERE key IN ({marks})",
                unique,
            ).fetchall()
            found = {row[0]: row for row in rows}
            if found:
                hit_marks = ",".join("?" * len(found))
                conn.execute(
                    f"UPDATE results SET hits = hits + 1"
                    f" WHERE key IN ({hit_marks})",
                    list(found),
                )
                conn.commit()
        return [
            self._row_to_result(found[key]) if key in found else None
            for key in keys
        ]

    @staticmethod
    def _row_to_result(row: Tuple) -> StoredResult:
        (
            key, scenario, family, formula, backend, config,
            payload, seconds, samples, extra, created, updated, hits, salt,
        ) = row
        return StoredResult(
            key=key,
            scenario=json.loads(scenario),
            family=family,
            formula=formula,
            backend=backend,
            config=json.loads(config),
            value=decode_value(payload),
            seconds=seconds,
            samples=samples,
            extra=json.loads(extra),
            created=created,
            updated=updated,
            hits=hits,
            salt=salt,
        )

    # -- maintenance / introspection ------------------------------------------

    def query(
        self,
        *,
        family: Optional[str] = None,
        backend: Optional[str] = None,
        formula: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[StoredResult]:
        """Scan stored rows, newest first, with optional filters."""
        where, params = self._filters(family, backend, formula)
        sql = f"SELECT {_COLUMNS} FROM results{where} ORDER BY updated DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._connection().execute(sql, params).fetchall()
        return [self._row_to_result(row) for row in rows]

    # -- survey history (cross-salt) ------------------------------------------

    def salts(self) -> List[str]:
        """Every distinct salt in the file, in first-insertion order.

        The salt axis *is* the version axis (the default salt embeds
        the package version and store schema), so this is the ordered
        list of code versions that ever banked into this file.
        """
        with self._lock:
            rows = self._connection().execute(
                "SELECT salt FROM results GROUP BY salt ORDER BY MIN(rowid)"
            ).fetchall()
        return [row[0] for row in rows]

    def history(
        self,
        scenario: Any,
        formula: str,
        backend: str = "exact",
        *,
        config: Any = None,
        salt: Optional[str] = None,
    ) -> List[HistoryPoint]:
        """How one logical guarantee moved across salts (versions).

        Matches rows on the stored ``(scenario, formula, backend)``
        identity *across every salt* — the inverse of :meth:`get`,
        which only ever sees the store's own salt — and returns one
        :class:`~repro.store.history.HistoryPoint` per banked row, in
        insertion order.  ``config=`` narrows to one exact backend
        fingerprint (pass the :func:`check_fingerprint` dict); by
        default every fingerprint's trajectory is returned, each point
        carrying its ``config``.  ``salt=`` restricts to one version.
        """
        clauses = ["scenario = ?", "formula = ?", "backend = ?"]
        params: List[Any] = [canonical(scenario), formula, backend]
        if config is not None:
            clauses.append("config = ?")
            params.append(canonical(config))
        if salt is not None:
            clauses.append("salt = ?")
            params.append(salt)
        sql = (
            f"SELECT {_COLUMNS} FROM results"
            f" WHERE {' AND '.join(clauses)} ORDER BY rowid"
        )
        with self._lock:
            rows = self._connection().execute(sql, params).fetchall()
        return [self._row_to_point(row) for row in rows]

    @classmethod
    def _row_to_point(cls, row: Tuple) -> HistoryPoint:
        """Build one :class:`HistoryPoint` from a raw results row."""
        result = cls._row_to_result(row)
        return HistoryPoint(
            salt=result.salt,
            value=result.value,
            seconds=result.seconds,
            samples=result.samples,
            created=result.created,
            config=result.config,
            key=result.key,
            warnings=tuple(getattr(result.value, "warnings", ()) or ()),
        )

    def compare(
        self,
        salt_a: str,
        salt_b: str,
        *,
        tolerance: float = DRIFT_TOLERANCE,
        family: Optional[str] = None,
    ) -> SaltDiff:
        """Classified diff of two salts' rows (version A vs version B).

        Each logical key — ``(scenario, formula, backend, config)`` —
        present under either salt is classified as ``unchanged``,
        ``drifted`` (relative metric change beyond ``tolerance``; see
        :func:`repro.store.history.classify_pair`), ``appeared`` (only
        under ``salt_b``) or ``vanished`` (only under ``salt_a``).
        ``family=`` narrows the comparison to one zoo family.
        """
        where = " WHERE salt = ?" + (" AND family = ?" if family else "")

        def rows_for(salt: str) -> Dict[Tuple, StoredResult]:
            """One salt's rows, keyed by logical identity."""
            params: List[Any] = [salt]
            if family:
                params.append(family)
            with self._lock:
                rows = self._connection().execute(
                    f"SELECT {_COLUMNS} FROM results{where} ORDER BY rowid",
                    params,
                ).fetchall()
            results = [self._row_to_result(row) for row in rows]
            return {
                (canonical(r.scenario), r.formula, r.backend,
                 canonical(r.config)): r
                for r in results
            }

        side_a, side_b = rows_for(salt_a), rows_for(salt_b)
        diff = SaltDiff(salt_a=salt_a, salt_b=salt_b, tolerance=tolerance)
        for ident in list(side_a) + [k for k in side_b if k not in side_a]:
            a, b = side_a.get(ident), side_b.get(ident)
            base = a or b
            entry = DiffEntry(
                scenario=base.scenario,
                formula=base.formula,
                backend=base.backend,
                config=base.config,
                family=base.family,
                status="",
                value_a=a.value if a else None,
                value_b=b.value if b else None,
            )
            if a is None:
                entry.status = "appeared"
                diff.appeared.append(entry)
            elif b is None:
                entry.status = "vanished"
                diff.vanished.append(entry)
            else:
                entry.status, entry.drift = classify_pair(
                    a.value, b.value, tolerance
                )
                (diff.drifted if entry.status == "drifted"
                 else diff.unchanged).append(entry)
        return diff

    def invalidate(
        self,
        *,
        family: Optional[str] = None,
        backend: Optional[str] = None,
        formula: Optional[str] = None,
    ) -> int:
        """Delete matching rows (all rows when no filter); returns count."""
        where, params = self._filters(family, backend, formula)
        with self._lock:
            conn = self._connection()
            cursor = conn.execute(f"DELETE FROM results{where}", params)
            conn.commit()
        return cursor.rowcount

    @staticmethod
    def _filters(
        family: Optional[str], backend: Optional[str], formula: Optional[str]
    ) -> Tuple[str, List[Any]]:
        clauses, params = [], []
        for column, value in (
            ("family", family), ("backend", backend), ("formula", formula)
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", params

    def stats(self) -> StoreStats:
        """Aggregate counters for the whole store file."""
        with self._lock:
            conn = self._connection()
            entries, seconds, hits = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(seconds), 0),"
                " COALESCE(SUM(hits), 0) FROM results"
            ).fetchone()
            families = dict(
                conn.execute(
                    "SELECT COALESCE(family, '?'), COUNT(*) FROM results"
                    " GROUP BY family"
                ).fetchall()
            )
            backends = dict(
                conn.execute(
                    "SELECT backend, COUNT(*) FROM results GROUP BY backend"
                ).fetchall()
            )
            salts = dict(
                conn.execute(
                    "SELECT salt, COUNT(*) FROM results GROUP BY salt"
                ).fetchall()
            )
        try:
            db_bytes = os.path.getsize(self.path)
        except OSError:
            db_bytes = 0
        return StoreStats(
            path=self.path,
            salt=self.salt,
            entries=entries,
            families=families,
            backends=backends,
            compute_seconds=seconds,
            total_hits=hits,
            db_bytes=db_bytes,
            schema_version=SCHEMA_VERSION,
            salts=salts,
        )

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection().execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return count

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r}, salt={self.salt!r})"


def read_through(
    store: ResultStore,
    *,
    key: Optional[Callable[[Any], Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Callable:
    """Decorator binding ``store`` into a sweep-check-style callable.

    The wrapped callable must accept the ``store=`` / ``store_key=`` /
    ``store_extra=`` keywords of :func:`repro.engine.sweep_check`; the
    decorator injects them (without overriding explicit arguments), so
    every call reads hits from ``store`` and writes misses back::

        from repro.engine import sweep_check
        from repro.store import ResultStore, read_through

        cached_check = read_through(ResultStore("results.sqlite"))(sweep_check)
        results = cached_check(build, points, "P=? [ F<=10 flag ]")
    """

    def decorate(fn: Callable) -> Callable:
        """Bind the store (and key/extra hooks) into ``fn``'s kwargs."""
        import functools

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            """``fn`` with the captured store defaults applied."""
            kwargs.setdefault("store", store)
            if key is not None:
                kwargs.setdefault("store_key", key)
            if extra is not None:
                kwargs.setdefault("store_extra", extra)
            return fn(*args, **kwargs)

        return wrapper

    return decorate
