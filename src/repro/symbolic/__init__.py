"""Symbolic engine: ROBDDs and MTBDDs, from scratch.

The data structures PRISM is built on.  Used here both as a
demonstrable substrate (the paper's engine is "a symbolic model
checking tool that uses ... binary decision diagrams") and as an
independent second implementation that cross-checks the sparse engine
in the test suite.
"""

from .bdd import BDD
from .encode import StateEncoding, SymbolicEngine
from .mtbdd import MTBDD

__all__ = ["BDD", "MTBDD", "StateEncoding", "SymbolicEngine"]
