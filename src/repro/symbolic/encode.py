"""Symbolic (MTBDD) representation of explicit DTMCs.

States are binary-encoded; the transition matrix becomes one MTBDD over
interleaved row/column bit variables (the ordering PRISM uses, which
keeps related row/column bits adjacent); distributions and rewards
become MTBDDs over the row bits.  On top of that,
:class:`SymbolicEngine` implements transient analysis — enough to
recompute the paper's P2/C1-style instantaneous-reward properties fully
symbolically and cross-check the sparse engine, which is exactly the
role PRISM's MTBDD core plays in the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..dtmc.chain import DTMC
from .mtbdd import MTBDD

__all__ = ["StateEncoding", "SymbolicEngine"]


class StateEncoding:
    """Binary state encoding with interleaved row/column variables.

    Bit ``k`` of a state index lives at MTBDD level ``2k`` for rows and
    ``2k+1`` for columns; low-order bits come first.
    """

    def __init__(self, num_states: int) -> None:
        if num_states < 1:
            raise ValueError("need at least one state")
        self.num_states = num_states
        self.num_bits = max(1, math.ceil(math.log2(num_states)))

    def row_level(self, bit: int) -> int:
        return 2 * bit

    def col_level(self, bit: int) -> int:
        return 2 * bit + 1

    @property
    def row_levels(self) -> List[int]:
        return [self.row_level(b) for b in range(self.num_bits)]

    @property
    def col_levels(self) -> List[int]:
        return [self.col_level(b) for b in range(self.num_bits)]

    @property
    def total_levels(self) -> int:
        return 2 * self.num_bits

    def state_bits(self, state: int) -> List[bool]:
        return [bool((state >> bit) & 1) for bit in range(self.num_bits)]

    def row_assignment(self, state: int) -> Dict[int, bool]:
        return {
            self.row_level(bit): value
            for bit, value in enumerate(self.state_bits(state))
        }

    def col_assignment(self, state: int) -> Dict[int, bool]:
        return {
            self.col_level(bit): value
            for bit, value in enumerate(self.state_bits(state))
        }


class SymbolicEngine:
    """MTBDD-backed transient analysis of a DTMC.

    >>> from repro.dtmc import dtmc_from_dict
    >>> chain = dtmc_from_dict(
    ...     {"a": {"a": 0.5, "b": 0.5}, "b": {"b": 1.0}}, initial="a")
    >>> engine = SymbolicEngine(chain)
    >>> float(engine.distribution_at(2)[1])
    0.75
    """

    def __init__(self, chain: DTMC) -> None:
        self.chain = chain
        self.encoding = StateEncoding(chain.num_states)
        self.manager = MTBDD(self.encoding.total_levels)
        self._matrix = self._encode_matrix()
        self._col_to_row = {
            self.encoding.col_level(b): self.encoding.row_level(b)
            for b in range(self.encoding.num_bits)
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode_matrix(self) -> int:
        manager = self.manager
        encoding = self.encoding
        matrix = self.chain.transition_matrix.tocoo()
        result = manager.zero
        for i, j, p in zip(matrix.row, matrix.col, matrix.data):
            assignment = encoding.row_assignment(int(i))
            assignment.update(encoding.col_assignment(int(j)))
            result = manager.plus(result, manager.cube(assignment, float(p)))
        return result

    def encode_row_vector(self, values: np.ndarray) -> int:
        """Encode a per-state vector over the row variables."""
        manager = self.manager
        encoding = self.encoding
        result = manager.zero
        for state, value in enumerate(np.asarray(values, dtype=np.float64)):
            if value != 0.0:
                result = manager.plus(
                    result,
                    manager.cube(encoding.row_assignment(state), float(value)),
                )
        return result

    def decode_row_vector(self, node: int) -> np.ndarray:
        """Evaluate a row-variable MTBDD back into a dense vector."""
        manager = self.manager
        encoding = self.encoding
        out = np.empty(encoding.num_states)
        for state in range(encoding.num_states):
            out[state] = manager.evaluate(node, encoding.row_assignment(state))
        return out

    @property
    def matrix_nodes(self) -> int:
        """Size of the symbolic transition matrix in MTBDD nodes —
        compare against ``chain.num_transitions`` to see the sharing."""
        seen = set()
        stack = [self._matrix]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if not self.manager.is_terminal(node):
                _, low, high = self.manager._nodes[node]
                stack.append(low)
                stack.append(high)
        return len(seen)

    # ------------------------------------------------------------------
    # Symbolic linear algebra
    # ------------------------------------------------------------------
    def step(self, distribution_node: int) -> int:
        """One symbolic step: ``pi' = pi P`` (result over row variables)."""
        manager = self.manager
        product = manager.times(self._matrix, distribution_node)
        summed = manager.sum_abstract(product, self.encoding.row_levels)
        return manager.rename(summed, self._col_to_row)

    def distribution_at(self, t: int) -> np.ndarray:
        """Distribution after ``t`` steps, computed fully symbolically."""
        node = self.encode_row_vector(self.chain.initial_distribution)
        for _ in range(t):
            node = self.step(node)
        return self.decode_row_vector(node)

    def instantaneous_reward(self, reward: str, t: int) -> float:
        """Symbolic ``R=? [ I=t ]`` — the paper's P2/C1 computation on
        the MTBDD engine."""
        manager = self.manager
        distribution = self.encode_row_vector(self.chain.initial_distribution)
        for _ in range(t):
            distribution = self.step(distribution)
        reward_node = self.encode_row_vector(self.chain.reward_vector(reward))
        product = manager.times(distribution, reward_node)
        total = manager.sum_abstract(
            product, self.encoding.row_levels
        )
        return manager.terminal_value(total)

    def bounded_reachability(self, label: str, t: int) -> float:
        """Symbolic ``P=? [ F<=t label ]`` from the initial distribution.

        Works on the backward value-iteration form: ``x_{k+1} = target
        + (1-target) * (P x_k)`` with ``x`` over column variables.
        """
        manager = self.manager
        encoding = self.encoding
        target_row = self.encode_row_vector(
            self.chain.label_vector(label).astype(np.float64)
        )
        row_to_col = {v: k for k, v in self._col_to_row.items()}
        x = target_row
        for _ in range(t):
            x_col = manager.rename(x, row_to_col)
            product = manager.times(self._matrix, x_col)
            px = manager.sum_abstract(product, encoding.col_levels)
            x = manager.ite(target_row, manager.one, px)
        init = self.encode_row_vector(self.chain.initial_distribution)
        total = manager.sum_abstract(
            manager.times(init, x), encoding.row_levels
        )
        return manager.terminal_value(total)
