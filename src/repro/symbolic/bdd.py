"""Reduced Ordered Binary Decision Diagrams (ROBDDs), from scratch.

PRISM — the engine the paper runs on — is a *symbolic* model checker:
state sets are BDDs and probability matrices are MTBDDs.  This module
is the boolean half of that substrate: a classic ROBDD package with a
unique table (hash-consing, so equality is pointer equality), a
memoized Shannon-expansion ``ite`` kernel, and the standard derived
operations (apply, restrict, exists/forall quantification, model
counting).

Nodes are integers: 0 and 1 are the terminals, every other node is an
entry ``(level, low, high)`` in the manager's node table.  Variables
are identified by their *level* in the (fixed) variable order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["BDD"]


class BDD:
    """A BDD manager over ``num_vars`` boolean variables.

    All diagrams created through one manager share its unique table;
    two equivalent functions are represented by the *same* integer
    node, so semantic equality checks are ``==`` on ints.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # node id -> (level, low, high); ids 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node plumbing
    # ------------------------------------------------------------------
    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        """Variable level of ``node`` (terminals sort below everything)."""
        if node <= 1:
            return self.num_vars
        return self._nodes[node][0]

    def cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """Shannon cofactors of ``node`` w.r.t. the variable at ``level``."""
        if node <= 1 or self._nodes[node][0] != level:
            return node, node
        _, low, high = self._nodes[node]
        return low, high

    @property
    def num_nodes(self) -> int:
        """Total nodes ever created (including the two terminals)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def var(self, level: int) -> int:
        """The projection function of the variable at ``level``."""
        if not 0 <= level < self.num_vars:
            raise ValueError(f"variable level {level} out of range")
        return self._make(level, self.FALSE, self.TRUE)

    def nvar(self, level: int) -> int:
        """The negated projection function."""
        return self._make(level, self.TRUE, self.FALSE)

    def cube(self, assignment: Dict[int, bool]) -> int:
        """Conjunction of literals, e.g. ``{0: True, 3: False}``."""
        node = self.TRUE
        for level in sorted(assignment, reverse=True):
            if assignment[level]:
                node = self._make(level, self.FALSE, node)
            else:
                node = self._make(level, node, self.FALSE)
        return node

    # ------------------------------------------------------------------
    # The ite kernel
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal BDD operation."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))
        f0, f1 = self.cofactors(f, level)
        g0, g1 = self.cofactors(g, level)
        h0, h1 = self.cofactors(h, level)
        result = self._make(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Derived boolean operations
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor ``f`` with the variable at ``level`` fixed."""
        if f <= 1 or self.level_of(f) > level:
            return f
        var_level, low, high = self._nodes[f]
        if var_level == level:
            return high if value else low
        return self._make(
            var_level,
            self.restrict(low, level, value),
            self.restrict(high, level, value),
        )

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        result = f
        for level in sorted(set(levels), reverse=True):
            result = self.apply_or(
                self.restrict(result, level, False),
                self.restrict(result, level, True),
            )
        return result

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universal quantification over the given variable levels."""
        result = f
        for level in sorted(set(levels), reverse=True):
            result = self.apply_and(
                self.restrict(result, level, False),
                self.restrict(result, level, True),
            )
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a (total) variable assignment."""
        node = f
        while node > 1:
            level, low, high = self._nodes[node]
            node = high if assignment.get(level, False) else low
        return node == self.TRUE

    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            # Returns count over variables at levels >= level_of(node),
            # normalized to "free" variables handled by the caller.
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1 << 0
            cached = cache.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            low_count = count(low) << (self.level_of(low) - level - 1)
            high_count = count(high) << (self.level_of(high) - level - 1)
            result = low_count + high_count
            cache[node] = result
            return result

        return count(f) << self.level_of(f)

    def satisfying_assignments(self, f: int) -> Iterator[Dict[int, bool]]:
        """Iterate all satisfying total assignments (exponential!)."""

        def walk_pruned(node: int, level: int, partial: Dict[int, bool]):
            if node == self.FALSE:
                return
            if level == self.num_vars:
                yield dict(partial)
                return
            low, high = self.cofactors(node, level)
            partial[level] = False
            yield from walk_pruned(low, level + 1, partial)
            partial[level] = True
            yield from walk_pruned(high, level + 1, partial)
            del partial[level]

        yield from walk_pruned(f, 0, {})

    def support(self, f: int) -> List[int]:
        """Variable levels ``f`` actually depends on."""
        seen = set()
        visited = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in visited:
                continue
            visited.add(node)
            level, low, high = self._nodes[node]
            seen.add(level)
            stack.append(low)
            stack.append(high)
        return sorted(seen)
