"""Multi-Terminal BDDs (a.k.a. Algebraic Decision Diagrams).

The numeric half of PRISM's symbolic substrate: where a BDD's leaves
are {0, 1}, an MTBDD's leaves are arbitrary reals, so a probability
matrix over boolean-encoded states is one shared diagram.  Implemented
operations: pointwise ``apply`` (+, *, min, max, ...), boolean-guarded
``ite``, scalar operations, threshold tests (back to BDD-like 0/1
diagrams), **sum-abstraction** over variables, and the matrix-vector
product built on it — everything symbolic transient analysis needs.

Terminals are hash-consed per manager with exact float equality (the
numbers come from shared computations, so equal values really are
identical bit patterns).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["MTBDD"]


class MTBDD:
    """An MTBDD manager over ``num_vars`` boolean variables."""

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # Node 0, 1, ... : terminals are registered lazily.
        # internal node: (level, low, high); terminal: (-1, value, None)
        self._nodes: List[Tuple] = []
        self._terminal_ids: Dict[float, int] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}
        self.zero = self.constant(0.0)
        self.one = self.constant(1.0)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def constant(self, value: float) -> int:
        """The constant function ``value``."""
        value = float(value)
        node = self._terminal_ids.get(value)
        if node is None:
            node = len(self._nodes)
            self._nodes.append((-1, value, None))
            self._terminal_ids[value] = node
        return node

    def is_terminal(self, node: int) -> bool:
        return self._nodes[node][0] == -1

    def terminal_value(self, node: int) -> float:
        level, value, _ = self._nodes[node]
        if level != -1:
            raise ValueError(f"node {node} is not a terminal")
        return value

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        level = self._nodes[node][0]
        return self.num_vars if level == -1 else level

    def cofactors(self, node: int, level: int) -> Tuple[int, int]:
        node_level, low, high = self._nodes[node]
        if node_level != level:
            return node, node
        return low, high

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def var(self, level: int, high_value: float = 1.0, low_value: float = 0.0) -> int:
        """Indicator of the variable at ``level`` (1 when true)."""
        if not 0 <= level < self.num_vars:
            raise ValueError(f"variable level {level} out of range")
        return self._make(
            level, self.constant(low_value), self.constant(high_value)
        )

    def cube(self, assignment: Dict[int, bool], value: float = 1.0) -> int:
        """``value`` on the given partial assignment, 0 elsewhere."""
        node = self.constant(value)
        for level in sorted(assignment, reverse=True):
            if assignment[level]:
                node = self._make(level, self.zero, node)
            else:
                node = self._make(level, node, self.zero)
        return node

    # ------------------------------------------------------------------
    # Pointwise operations
    # ------------------------------------------------------------------
    def apply(self, op: Callable[[float, float], float], f: int, g: int,
              op_name: Optional[str] = None) -> int:
        """Pointwise binary operation (memoized per (op, f, g))."""
        key = (op_name or id(op), f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        if self.is_terminal(f) and self.is_terminal(g):
            result = self.constant(
                op(self.terminal_value(f), self.terminal_value(g))
            )
        else:
            level = min(self.level_of(f), self.level_of(g))
            f0, f1 = self.cofactors(f, level)
            g0, g1 = self.cofactors(g, level)
            result = self._make(
                level,
                self.apply(op, f0, g0, op_name),
                self.apply(op, f1, g1, op_name),
            )
        self._apply_cache[key] = result
        return result

    def plus(self, f: int, g: int) -> int:
        return self.apply(operator.add, f, g, "+")

    def times(self, f: int, g: int) -> int:
        return self.apply(operator.mul, f, g, "*")

    def minimum(self, f: int, g: int) -> int:
        return self.apply(min, f, g, "min")

    def maximum(self, f: int, g: int) -> int:
        return self.apply(max, f, g, "max")

    def scale(self, f: int, factor: float) -> int:
        return self.times(f, self.constant(factor))

    def ite(self, condition: int, then: int, otherwise: int) -> int:
        """Pointwise select: where ``condition`` is nonzero take ``then``."""
        # condition * then + (1 - condition) * otherwise, assuming the
        # condition diagram is 0/1-valued.
        not_condition = self.apply(
            lambda a, b: 1.0 - a, condition, condition, "not"
        )
        return self.plus(
            self.times(condition, then), self.times(not_condition, otherwise)
        )

    def threshold(self, f: int, bound: float) -> int:
        """0/1 diagram of ``f >= bound``."""
        return self.apply(
            lambda a, _: 1.0 if a >= bound else 0.0, f, f, f"geq{bound}"
        )

    # ------------------------------------------------------------------
    # Abstraction (the heart of symbolic matrix algebra)
    # ------------------------------------------------------------------
    def sum_abstract(self, f: int, levels: Iterable[int]) -> int:
        """Sum out the given variables:
        ``g(rest) = sum over assignments of levels of f``."""
        result = f
        for level in sorted(set(levels), reverse=True):
            result = self._sum_out(result, level)
        return result

    def _sum_out(self, f: int, level: int) -> int:
        key = ("sum", f, level)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        f_level = self.level_of(f)
        if f_level > level:
            # f does not depend on the variable: summing doubles it.
            result = self.scale(f, 2.0)
        elif f_level == level:
            low, high = self.cofactors(f, level)
            result = self.plus(low, high)
        else:
            node_level, low, high = self._nodes[f]
            result = self._make(
                node_level,
                self._sum_out(low, level),
                self._sum_out(high, level),
            )
        self._apply_cache[key] = result
        return result

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables (levels) according to ``mapping``.

        The mapping must be order-preserving between source and target
        levels (true for the row/column interleavings used here).
        """
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self.is_terminal(node):
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            new_level = mapping.get(level, level)
            result = self._make(new_level, walk(low), walk(high))
            cache[node] = result
            return result

        return walk(f)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Dict[int, bool]) -> float:
        node = f
        while not self.is_terminal(node):
            level, low, high = self._nodes[node]
            node = high if assignment.get(level, False) else low
        return self.terminal_value(node)

    def terminals(self, f: int) -> List[float]:
        """Distinct terminal values reachable from ``f``."""
        seen = set()
        values = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            if level == -1:
                values.add(low)
            else:
                stack.append(low)
                stack.append(high)
        return sorted(values)
