"""Statistical model checking of DTMC models.

Connects the path sampler (:mod:`repro.dtmc.simulate`) to the SMC
algorithms: a bounded pCTL path property becomes a Bernoulli trial
("does a sampled path satisfy it?"), which APMC estimates with a
Hoeffding guarantee and the SPRT decides against a threshold.

This is the Younes/Hérault-style methodology the paper's related work
([13]) applies to analog circuits — implemented here so the exact and
the statistical verdicts can be compared on the same models (the test
suite does exactly that).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..dtmc.chain import DTMC
from ..dtmc.simulate import PathSampler
from ..pctl.ast import Eventually, Globally, Next, ProbQuery, Until, WeakUntil
from ..pctl.checker import ModelChecker, PctlSemanticsError
from ..pctl.parser import parse_formula
from .hoeffding import ApmcResult, approximate_probability
from .sprt import SprtResult, sprt_decide

__all__ = ["path_satisfies", "make_path_trial", "smc_estimate", "smc_decide"]


def _bounded_path_parts(chain: DTMC, formula: Union[str, ProbQuery]):
    """Extract (kind, bound, left-set, right-set) from a bounded query."""
    if isinstance(formula, str):
        formula = parse_formula(formula)
    if not isinstance(formula, ProbQuery):
        raise PctlSemanticsError(
            "statistical checking needs a P operator over a bounded path"
        )
    path = formula.path
    if getattr(path, "lower", 0):
        raise PctlSemanticsError(
            "interval lower bounds are not supported by the statistical"
            " checker; use the exact engine"
        )
    checker = ModelChecker(chain)
    if isinstance(path, Next):
        return "next", 1, None, checker.satisfaction(path.operand)
    if isinstance(path, Eventually):
        if path.bound is None:
            raise PctlSemanticsError("unbounded F needs the exact checker")
        return (
            "until",
            path.bound,
            np.ones(chain.num_states, bool),
            checker.satisfaction(path.operand),
        )
    if isinstance(path, Globally):
        if path.bound is None:
            raise PctlSemanticsError("unbounded G needs the exact checker")
        return "globally", path.bound, checker.satisfaction(path.operand), None
    if isinstance(path, (Until, WeakUntil)):
        if path.bound is None:
            raise PctlSemanticsError("unbounded U/W needs the exact checker")
        kind = "weak" if isinstance(path, WeakUntil) else "until"
        return (
            kind,
            path.bound,
            checker.satisfaction(path.left),
            checker.satisfaction(path.right),
        )
    raise PctlSemanticsError(f"unsupported path formula {path!r}")


def path_satisfies(
    kind: str, bound: int, left: np.ndarray, right, path: np.ndarray
) -> bool:
    """Evaluate a bounded path property on one sampled path prefix."""
    if kind == "next":
        return bool(right[path[1]])
    if kind == "globally":
        return bool(left[path[: bound + 1]].all())
    # until / weak until semantics over steps 0..bound.
    for t in range(bound + 1):
        state = path[t]
        if right is not None and right[state]:
            return True
        if not left[state]:
            return False
    # No right-state reached within the bound.
    return kind == "weak"


def make_path_trial(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    sampler: Optional[PathSampler] = None,
) -> Callable[[np.random.Generator], bool]:
    """Compile a bounded path property into a Bernoulli trial function.

    The returned callable draws one path prefix and reports whether it
    satisfies the property — the sampling primitive both SMC algorithms
    consume.
    """
    kind, bound, left, right = _bounded_path_parts(chain, formula)
    shared = sampler if sampler is not None else PathSampler(chain)

    def trial(rng: np.random.Generator) -> bool:
        shared.rng = rng
        path = shared.path(bound)
        return path_satisfies(kind, bound, left, right, path)

    return trial


def smc_estimate(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    epsilon: float = 0.01,
    delta: float = 0.05,
    seed: Optional[int] = 0,
) -> ApmcResult:
    """APMC estimate of a bounded path probability on ``chain``.

    ``P(|estimate - exact| > epsilon) < delta`` by Hoeffding's bound;
    the exact value is what :func:`repro.pctl.check` returns.
    """
    trial = make_path_trial(chain, formula)
    return approximate_probability(trial, epsilon=epsilon, delta=delta, seed=seed)


def smc_decide(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    theta: float,
    half_width: float = 0.01,
    alpha: float = 0.01,
    beta: float = 0.01,
    seed: Optional[int] = 0,
) -> SprtResult:
    """SPRT decision of ``P(path formula) >= theta`` on ``chain``."""
    trial = make_path_trial(chain, formula)
    return sprt_decide(
        trial,
        theta=theta,
        half_width=half_width,
        alpha=alpha,
        beta=beta,
        seed=seed,
    )
