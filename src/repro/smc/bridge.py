"""Statistical model checking of DTMC models.

Connects the path sampler (:mod:`repro.dtmc.simulate`) to the SMC
algorithms: a bounded pCTL path property becomes a Bernoulli trial
("does a sampled path satisfy it?"), which APMC estimates with a
Hoeffding guarantee and the SPRT decides against a threshold.

This is the Younes/Hérault-style methodology the paper's related work
([13]) applies to analog circuits — implemented here so the exact and
the statistical verdicts can be compared on the same models (the test
suite does exactly that).

Two trial compilers are provided.  :func:`make_path_trial` is the
scalar form: one sampled path per call, evaluated after the fact by
:func:`path_satisfies`.  :func:`make_batch_trial` compiles the same
formula into a :class:`BatchTrial` that *fuses* property evaluation
into a vectorized walk: all walkers advance together one time step per
numpy call, each walker retires as soon as its verdict is decided, and
the walk stops early once every walker is decided — without ever
materializing a ``(count, bound + 1)`` path matrix.  Both compilers
map walker ``i``'s randomness to the same generator draws, so batched
outcome sequences are bit-identical to scalar ones for the same seed.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..dtmc.chain import DTMC
from ..dtmc.graph import constrained_backward_reachable
from ..dtmc.simulate import PathSampler
from ..pctl.ast import Eventually, Globally, Next, ProbQuery, Until, WeakUntil
from ..pctl.checker import ModelChecker, PctlSemanticsError
from ..pctl.parser import parse_formula
from .hoeffding import ApmcResult, approximate_probability
from .sprt import SprtResult, sprt_decide

__all__ = [
    "path_satisfies",
    "make_path_trial",
    "BatchTrial",
    "make_batch_trial",
    "smc_estimate",
    "smc_decide",
]


def _bounded_path_parts(chain: DTMC, formula: Union[str, ProbQuery]):
    """Extract (kind, bound, left-set, right-set) from a bounded query."""
    if isinstance(formula, str):
        formula = parse_formula(formula)
    if not isinstance(formula, ProbQuery):
        raise PctlSemanticsError(
            "statistical checking needs a P operator over a bounded path"
        )
    path = formula.path
    if getattr(path, "lower", 0):
        raise PctlSemanticsError(
            "interval lower bounds are not supported by the statistical"
            " checker; use the exact engine"
        )
    checker = ModelChecker(chain)
    if isinstance(path, Next):
        return "next", 1, None, checker.satisfaction(path.operand)
    if isinstance(path, Eventually):
        if path.bound is None:
            raise PctlSemanticsError("unbounded F needs the exact checker")
        return (
            "until",
            path.bound,
            np.ones(chain.num_states, bool),
            checker.satisfaction(path.operand),
        )
    if isinstance(path, Globally):
        if path.bound is None:
            raise PctlSemanticsError("unbounded G needs the exact checker")
        return "globally", path.bound, checker.satisfaction(path.operand), None
    if isinstance(path, (Until, WeakUntil)):
        if path.bound is None:
            raise PctlSemanticsError("unbounded U/W needs the exact checker")
        kind = "weak" if isinstance(path, WeakUntil) else "until"
        return (
            kind,
            path.bound,
            checker.satisfaction(path.left),
            checker.satisfaction(path.right),
        )
    raise PctlSemanticsError(f"unsupported path formula {path!r}")


def path_satisfies(
    kind: str, bound: int, left: np.ndarray, right, path: np.ndarray
) -> bool:
    """Evaluate a bounded path property on one sampled path prefix."""
    if kind == "next":
        return bool(right[path[1]])
    if kind == "globally":
        return bool(left[path[: bound + 1]].all())
    # until / weak until semantics over steps 0..bound.
    for t in range(bound + 1):
        state = path[t]
        if right is not None and right[state]:
            return True
        if not left[state]:
            return False
    # No right-state reached within the bound.
    return kind == "weak"


def _resolve_sampler(
    chain: DTMC, sampler: Optional[PathSampler], engine=None
) -> PathSampler:
    """Pick the sampler: explicit > engine-cached alias tables > fresh."""
    if sampler is not None:
        return sampler
    if engine is not None:
        return engine.path_sampler(chain)
    return PathSampler(chain)


def _make_trial(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    batched: bool,
    sampler: Optional[PathSampler],
    engine,
):
    """The trial both SMC entry points hand to their algorithm."""
    if batched:
        return make_batch_trial(chain, formula, sampler=sampler, engine=engine)
    return make_path_trial(
        chain, formula, sampler=_resolve_sampler(chain, sampler, engine)
    )


def make_path_trial(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    sampler: Optional[PathSampler] = None,
) -> Callable[[np.random.Generator], bool]:
    """Compile a bounded path property into a scalar Bernoulli trial.

    The returned callable draws one path prefix and reports whether it
    satisfies the property.  The generator is threaded through the
    call — shared samplers are never mutated, so one compiled trial is
    safe under the sweep runner's thread executor.
    """
    kind, bound, left, right = _bounded_path_parts(chain, formula)
    shared = sampler if sampler is not None else PathSampler(chain)

    def trial(rng: np.random.Generator) -> bool:
        path = shared.path(bound, rng=rng)
        return path_satisfies(kind, bound, left, right, path)

    return trial


class BatchTrial:
    """A bounded path property compiled to fused batched trials.

    Calling ``trial(rng, count)`` samples ``count`` paths *and*
    evaluates the property in one pass: a single ``(count, draws)``
    uniform block is drawn up front (row ``i`` is walker ``i``'s
    randomness, matching the scalar trial's draw order), then all
    still-undecided walkers advance together one
    :meth:`~repro.dtmc.simulate.PathSampler.advance` per time step.
    Walkers retire as soon as the right-set is hit or the left-set is
    violated, and the walk stops outright when none remain alive — on
    chains with absorbing goal states this typically walks far fewer
    than ``bound`` steps.

    Attributes
    ----------
    draws_per_trial:
        Uniforms consumed per trial (``bound + 1``), fixed so chunked
        and scalar runs see identical outcome sequences per seed.
    last_walk_steps:
        Time steps actually walked by the most recent call — the
        early-termination observable (``<= bound``).
    """

    is_batch = True

    def __init__(
        self,
        chain: DTMC,
        formula: Union[str, ProbQuery],
        sampler: Optional[PathSampler] = None,
        engine=None,
    ) -> None:
        kind, bound, left, right = _bounded_path_parts(chain, formula)
        self.chain = chain
        self.kind = kind
        self.bound = int(bound)
        self.left = left
        self.right = right
        self.sampler = _resolve_sampler(chain, sampler, engine)
        self.draws_per_trial = self.bound + 1
        self.last_walk_steps = 0
        self.trials_drawn = 0
        # Retirement sets beyond the formula's own left/right masks:
        # walkers whose verdict can no longer change stop walking.
        n = chain.num_states
        absorbing = chain.transition_matrix.diagonal() >= 1.0 - 1e-12
        if kind == "until":
            # States that cannot reach `right` along `left` paths fail
            # every (bounded or not) until — Prob0-style retirement.
            reach = constrained_backward_reachable(
                chain, np.nonzero(right)[0], left & ~right
            )
            dead = np.ones(n, dtype=bool)
            dead[list(reach)] = False
            self._retire_fail = dead
            self._retire_pass = np.zeros(n, dtype=bool)
        elif kind == "weak":
            self._retire_fail = np.zeros(n, dtype=bool)
            self._retire_pass = absorbing & left & ~right
        elif kind == "globally":
            self._retire_fail = np.zeros(n, dtype=bool)
            self._retire_pass = absorbing & left
        else:  # next: single step, nothing to retire
            self._retire_fail = self._retire_pass = np.zeros(n, dtype=bool)

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        uniforms = rng.random((count, self.draws_per_trial))
        sampler = self.sampler
        states = sampler.sample_initials_from(uniforms[:, 0])
        self.trials_drawn += count
        if self.kind == "next":
            self.last_walk_steps = 1
            return self.right[sampler.advance(states, uniforms[:, 1])]

        outcome = np.zeros(count, dtype=bool)
        if self.kind == "globally":
            holds = self.left[states]
            frozen = holds & self._retire_pass[states]
            outcome[frozen] = True  # absorbed inside left: safe forever
            walking = np.nonzero(holds & ~frozen)[0]
            current = states[walking]
            steps = 0
            for t in range(1, self.bound + 1):
                if walking.size == 0:
                    break
                steps = t
                current = sampler.advance(current, uniforms[walking, t])
                keep = self.left[current]
                walking = walking[keep]
                current = current[keep]
                frozen = self._retire_pass[current]
                if frozen.any():
                    outcome[walking[frozen]] = True
                    walking = walking[~frozen]
                    current = current[~frozen]
            outcome[walking] = True  # survived every step
            self.last_walk_steps = steps
            return outcome

        # until / weak until: retire on right-hit (success),
        # left-violation (failure), a Prob0 state (until can no longer
        # succeed) or a safe absorbing state (weak can no longer fail);
        # weak-until survivors succeed.
        satisfied = self.right[states]
        outcome[satisfied] = True
        frozen = ~satisfied & self._retire_pass[states]
        outcome[frozen] = True
        undecided = (
            ~satisfied
            & ~frozen
            & self.left[states]
            & ~self._retire_fail[states]
        )
        walking = np.nonzero(undecided)[0]
        current = states[walking]
        steps = 0
        for t in range(1, self.bound + 1):
            if walking.size == 0:
                break
            steps = t
            current = sampler.advance(current, uniforms[walking, t])
            hit = self.right[current]
            outcome[walking[hit]] = True
            frozen = ~hit & self._retire_pass[current]
            if frozen.any():
                outcome[walking[frozen]] = True
            keep = (
                ~hit
                & ~frozen
                & self.left[current]
                & ~self._retire_fail[current]
            )
            walking = walking[keep]
            current = current[keep]
        if self.kind == "weak":
            outcome[walking] = True
        self.last_walk_steps = steps
        return outcome


def make_batch_trial(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    sampler: Optional[PathSampler] = None,
    engine=None,
) -> BatchTrial:
    """Compile a bounded path property into a :class:`BatchTrial`.

    Pass an :class:`~repro.engine.Engine` to reuse its per-chain cached
    alias tables across properties and calls.
    """
    return BatchTrial(chain, formula, sampler=sampler, engine=engine)


def smc_estimate(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    epsilon: float = 0.01,
    delta: float = 0.05,
    seed: Optional[int] = 0,
    *,
    batched: bool = True,
    batch: int = 4096,
    sampler: Optional[PathSampler] = None,
    engine=None,
) -> ApmcResult:
    """APMC estimate of a bounded path probability on ``chain``.

    ``P(|estimate - exact| > epsilon) < delta`` by Hoeffding's bound;
    the exact value is what :func:`repro.pctl.check` returns.  The
    default ``batched=True`` routes through a fused
    :class:`BatchTrial`; ``batched=False`` keeps the scalar per-path
    baseline (same outcome sequence per seed, orders of magnitude
    slower).
    """
    trial = _make_trial(chain, formula, batched, sampler, engine)
    return approximate_probability(
        trial, epsilon=epsilon, delta=delta, seed=seed, batch=batch
    )


def smc_decide(
    chain: DTMC,
    formula: Union[str, ProbQuery],
    theta: float,
    half_width: float = 0.01,
    alpha: float = 0.01,
    beta: float = 0.01,
    seed: Optional[int] = 0,
    *,
    batched: bool = True,
    sampler: Optional[PathSampler] = None,
    engine=None,
) -> SprtResult:
    """SPRT decision of ``P(path formula) >= theta`` on ``chain``.

    With ``batched=True`` (default) the test draws geometrically
    growing chunks of fused trials; the data-dependent stopping sample
    is identical to the scalar run for the same seed.
    """
    trial = _make_trial(chain, formula, batched, sampler, engine)
    return sprt_decide(
        trial,
        theta=theta,
        half_width=half_width,
        alpha=alpha,
        beta=beta,
        seed=seed,
    )
