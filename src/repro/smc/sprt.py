"""Wald's Sequential Probability Ratio Test for qualitative properties.

Decides hypotheses of the form ``P(property) >= theta`` against
``P(property) < theta`` by sampling paths until the accumulated
likelihood ratio crosses Wald's thresholds — Younes & Simmons' approach
to statistical model checking of qualitative pCTL, complementing the
additive-error estimator in :mod:`repro.smc.hoeffding`.

The test uses an indifference region ``theta ± half_width``: inside it
either answer is acceptable; outside it the error probabilities are
bounded by ``alpha`` (false reject) and ``beta`` (false accept).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["SprtResult", "sprt_decide"]


@dataclass(frozen=True)
class SprtResult:
    """Decision of one SPRT run.

    ``accept`` is True when the hypothesis ``p >= theta`` was accepted.
    ``samples`` is the (data-dependent) number of paths drawn.
    """

    accept: bool
    samples: int
    theta: float
    half_width: float
    alpha: float
    beta: float

    def __str__(self) -> str:
        verdict = ">=" if self.accept else "<"
        return (
            f"P {verdict} {self.theta} (indifference ±{self.half_width},"
            f" {self.samples} samples)"
        )


def sprt_decide(
    trial: Callable[[np.random.Generator], bool],
    theta: float,
    half_width: float = 0.01,
    alpha: float = 0.01,
    beta: float = 0.01,
    seed: Optional[int] = 0,
    max_samples: int = 10_000_000,
) -> SprtResult:
    """Run the SPRT for ``H0: p >= theta + half_width`` vs
    ``H1: p <= theta - half_width``.

    Accepting H0 is reported as ``accept=True`` (the property holds
    with probability at least ``theta``).
    """
    p0 = theta + half_width
    p1 = theta - half_width
    if not 0.0 < p1 < p0 < 1.0:
        raise ValueError(
            "need 0 < theta - half_width < theta + half_width < 1"
        )
    log_a = math.log((1.0 - alpha) / beta)
    log_b = math.log(alpha / (1.0 - beta))
    # Per-sample log-likelihood-ratio increments of H1 vs H0.
    inc_success = math.log(p1 / p0)
    inc_failure = math.log((1.0 - p1) / (1.0 - p0))

    rng = np.random.default_rng(seed)
    llr = 0.0
    samples = 0
    while samples < max_samples:
        samples += 1
        llr += inc_success if trial(rng) else inc_failure
        if llr >= log_a:
            return SprtResult(False, samples, theta, half_width, alpha, beta)
        if llr <= log_b:
            return SprtResult(True, samples, theta, half_width, alpha, beta)
    raise RuntimeError(
        f"SPRT did not terminate within {max_samples} samples; p is likely"
        " inside the indifference region - widen it or use APMC"
    )
