"""Wald's Sequential Probability Ratio Test for qualitative properties.

Decides hypotheses of the form ``P(property) >= theta`` against
``P(property) < theta`` by sampling paths until the accumulated
likelihood ratio crosses Wald's thresholds — Younes & Simmons' approach
to statistical model checking of qualitative pCTL, complementing the
additive-error estimator in :mod:`repro.smc.hoeffding`.

The test uses an indifference region ``theta ± half_width``: inside it
either answer is acceptable; outside it the error probabilities are
bounded by ``alpha`` (false reject) and ``beta`` (false accept).

Batched trials (the ``trials(rng, n) -> bool ndarray`` protocol of
:mod:`repro.smc.trials`) are consumed in geometrically growing chunks;
the cumulative log-likelihood ratio is scanned *inside* each chunk in
the exact accumulation order of the sequential test, so early stopping
is preserved and the data-dependent ``samples`` count is identical to
what a scalar one-trial-at-a-time run of the same outcome sequence
reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .trials import BatchTrials, ScalarTrial, is_batch_trial

__all__ = ["SprtResult", "sprt_decide"]

#: Chunk schedule of the batched test: start small so clear-cut cases
#: draw few samples, double up to a cap that bounds per-chunk memory.
_CHUNK_START = 64
_CHUNK_MAX = 8192


@dataclass(frozen=True)
class SprtResult:
    """Decision of one SPRT run.

    ``accept`` is True when the hypothesis ``p >= theta`` was accepted.
    ``samples`` is the (data-dependent) number of paths drawn.
    """

    accept: bool
    samples: int
    theta: float
    half_width: float
    alpha: float
    beta: float

    def __str__(self) -> str:
        verdict = ">=" if self.accept else "<"
        return (
            f"P {verdict} {self.theta} (indifference ±{self.half_width},"
            f" {self.samples} samples)"
        )


def sprt_decide(
    trial: Union[ScalarTrial, BatchTrials],
    theta: float,
    half_width: float = 0.01,
    alpha: float = 0.01,
    beta: float = 0.01,
    seed: Optional[int] = 0,
    max_samples: int = 10_000_000,
) -> SprtResult:
    """Run the SPRT for ``H0: p >= theta + half_width`` vs
    ``H1: p <= theta - half_width``.

    Accepting H0 is reported as ``accept=True`` (the property holds
    with probability at least ``theta``).  ``trial`` may be scalar or
    batched (see :mod:`repro.smc.trials`); a batched trial runs the
    chunked test described in the module docstring.
    """
    p0 = theta + half_width
    p1 = theta - half_width
    if not 0.0 < p1 < p0 < 1.0:
        raise ValueError(
            "need 0 < theta - half_width < theta + half_width < 1"
        )
    log_a = math.log((1.0 - alpha) / beta)
    log_b = math.log(alpha / (1.0 - beta))
    # Per-sample log-likelihood-ratio increments of H1 vs H0.
    inc_success = math.log(p1 / p0)
    inc_failure = math.log((1.0 - p1) / (1.0 - p0))

    rng = np.random.default_rng(seed)

    def result(accept: bool, samples: int) -> SprtResult:
        return SprtResult(accept, samples, theta, half_width, alpha, beta)

    if is_batch_trial(trial):
        llr = 0.0
        samples = 0
        chunk = _CHUNK_START
        while samples < max_samples:
            chunk = min(chunk, max_samples - samples)
            outcomes = np.asarray(trial(rng, chunk), dtype=bool)
            increments = np.where(outcomes, inc_success, inc_failure)
            # Prepending the carried LLR reproduces the sequential
            # left-to-right float accumulation exactly, so threshold
            # crossings land on the same sample as the scalar test.
            cumulative = np.cumsum(np.concatenate(([llr], increments)))[1:]
            crossed = (cumulative >= log_a) | (cumulative <= log_b)
            if crossed.any():
                first = int(np.argmax(crossed))
                return result(
                    bool(cumulative[first] <= log_b), samples + first + 1
                )
            llr = float(cumulative[-1])
            samples += chunk
            chunk = min(chunk * 2, _CHUNK_MAX)
    else:
        llr = 0.0
        samples = 0
        while samples < max_samples:
            samples += 1
            llr += inc_success if trial(rng) else inc_failure
            if llr >= log_a:
                return result(False, samples)
            if llr <= log_b:
                return result(True, samples)
    raise RuntimeError(
        f"SPRT did not terminate within {max_samples} samples; p is likely"
        " inside the indifference region - widen it or use APMC"
    )
