"""Statistical model checking: sampling with explicit guarantees.

Approximate probabilistic model checking (Chernoff-Hoeffding bounds)
and Wald's SPRT for qualitative thresholds — the middle ground between
the paper's exhaustive verification and plain Monte-Carlo estimation.
"""

from .bridge import make_path_trial, path_satisfies, smc_decide, smc_estimate
from .hoeffding import ApmcResult, approximate_probability, hoeffding_sample_size
from .sprt import SprtResult, sprt_decide

__all__ = [
    "make_path_trial",
    "path_satisfies",
    "smc_decide",
    "smc_estimate",
    "ApmcResult",
    "approximate_probability",
    "hoeffding_sample_size",
    "SprtResult",
    "sprt_decide",
]
