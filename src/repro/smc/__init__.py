"""Statistical model checking: sampling with explicit guarantees.

Approximate probabilistic model checking (Chernoff-Hoeffding bounds)
and Wald's SPRT for qualitative thresholds — the middle ground between
the paper's exhaustive verification and plain Monte-Carlo estimation.

Both algorithms consume Bernoulli trials in either the scalar
``trial(rng) -> bool`` or the batched ``trials(rng, n) -> bool array``
convention (:mod:`repro.smc.trials`); :func:`make_batch_trial`
compiles a bounded pCTL path property to the fused, vectorized form
that makes APMC/SPRT runs orders of magnitude faster than per-path
sampling.
"""

from .bridge import (
    BatchTrial,
    make_batch_trial,
    make_path_trial,
    path_satisfies,
    smc_decide,
    smc_estimate,
)
from .hoeffding import ApmcResult, approximate_probability, hoeffding_sample_size
from .sprt import SprtResult, sprt_decide
from .trials import as_batch_trial, is_batch_trial

__all__ = [
    "BatchTrial",
    "make_batch_trial",
    "make_path_trial",
    "path_satisfies",
    "smc_decide",
    "smc_estimate",
    "ApmcResult",
    "approximate_probability",
    "hoeffding_sample_size",
    "SprtResult",
    "sprt_decide",
    "as_batch_trial",
    "is_batch_trial",
]
