"""Trial protocols shared by the SMC algorithms.

Both SMC algorithms consume Bernoulli trials.  Two calling conventions
are supported:

* **scalar** — ``trial(rng) -> bool``: one sampled outcome per call
  (the historical interface, and the natural one for ad-hoc lambdas);
* **batched** — ``trials(rng, n) -> bool ndarray``: ``n`` outcomes in
  one vectorized call (what :class:`repro.smc.bridge.BatchTrial`
  provides — orders of magnitude faster for path properties).

:func:`as_batch_trial` coerces either form to the batched one, so the
algorithm implementations only ever see the batched protocol.  A
wrapped scalar trial is called sequentially, which keeps its generator
consumption — and therefore its outcome sequence for a given seed —
identical to the pre-batching implementations.
"""

from __future__ import annotations

import inspect
from typing import Callable, Union

import numpy as np

__all__ = ["BatchTrials", "ScalarTrial", "is_batch_trial", "as_batch_trial"]

ScalarTrial = Callable[[np.random.Generator], bool]
BatchTrials = Callable[[np.random.Generator, int], np.ndarray]


def is_batch_trial(trial: Union[ScalarTrial, BatchTrials]) -> bool:
    """Does ``trial`` follow the batched ``(rng, n)`` convention?

    Objects may declare themselves with an ``is_batch`` attribute
    (as :class:`repro.smc.bridge.BatchTrial` does); otherwise the call
    signature decides: two or more required positional parameters means
    batched.
    """
    declared = getattr(trial, "is_batch", None)
    if declared is not None:
        return bool(declared)
    try:
        signature = inspect.signature(trial)
    except (TypeError, ValueError):
        return False
    required = [
        p
        for p in signature.parameters.values()
        if p.default is inspect.Parameter.empty
        and p.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    return len(required) >= 2


def as_batch_trial(trial: Union[ScalarTrial, BatchTrials]) -> BatchTrials:
    """Coerce a trial of either convention to the batched protocol."""
    if is_batch_trial(trial):
        return trial

    def batched(rng: np.random.Generator, count: int) -> np.ndarray:
        return np.fromiter(
            (bool(trial(rng)) for _ in range(count)), dtype=bool, count=count
        )

    batched.is_batch = True
    batched.__wrapped__ = trial
    return batched
