"""Chernoff-Hoeffding statistical model checking (additive-error APMC).

Hérault et al.'s approximate probabilistic model checking: to estimate
``p = P(property)`` within additive error ``epsilon`` with confidence
``1 - delta``, it suffices to average

    N >= ln(2 / delta) / (2 * epsilon^2)

i.i.d. Bernoulli samples.  This gives simulation a *guarantee* — the
statistical counterpart of the paper's exhaustive guarantees, included
here because the paper positions itself against statistical model
checking (its reference [13]).

The estimator is batch-aware: trials following the batched
``trials(rng, n) -> bool ndarray`` protocol (see
:mod:`repro.smc.trials`) fill the Hoeffding quota in a few large
vectorized chunks, while scalar ``trial(rng) -> bool`` callables keep
working through an adapter with their historical one-draw-per-call
generator consumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .trials import BatchTrials, ScalarTrial, as_batch_trial

__all__ = ["hoeffding_sample_size", "ApmcResult", "approximate_probability"]


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Samples sufficient for ``P(|estimate - p| > epsilon) < delta``."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


@dataclass(frozen=True)
class ApmcResult:
    """Outcome of an approximate probabilistic model checking run."""

    estimate: float
    samples: int
    epsilon: float
    delta: float

    @property
    def interval(self) -> tuple:
        """The (guaranteed-coverage) additive-error interval."""
        return (
            max(0.0, self.estimate - self.epsilon),
            min(1.0, self.estimate + self.epsilon),
        )

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4g} +/- {self.epsilon} "
            f"(confidence {1 - self.delta:.2%}, {self.samples} samples)"
        )


def approximate_probability(
    trial: Union[ScalarTrial, BatchTrials],
    epsilon: float = 0.01,
    delta: float = 0.01,
    seed: Optional[int] = 0,
    batch: int = 4096,
) -> ApmcResult:
    """Estimate ``P(trial succeeds)`` with a Hoeffding guarantee.

    ``trial`` is either a scalar ``trial(rng) -> bool`` or a batched
    ``trials(rng, n) -> bool ndarray``; the required sample count is
    drawn in chunks of at most ``batch`` either way, so peak memory of
    a batched trial stays bounded while a scalar one behaves exactly as
    it always did.
    """
    needed = hoeffding_sample_size(epsilon, delta)
    trials = as_batch_trial(trial)
    rng = np.random.default_rng(seed)
    successes = 0
    done = 0
    while done < needed:
        chunk = min(batch, needed - done)
        outcomes = np.asarray(trials(rng, chunk), dtype=bool)
        if outcomes.shape != (chunk,):
            raise ValueError(
                f"batched trial returned shape {outcomes.shape},"
                f" expected ({chunk},)"
            )
        successes += int(np.count_nonzero(outcomes))
        done += chunk
    return ApmcResult(successes / needed, needed, epsilon, delta)
