"""Chernoff-Hoeffding statistical model checking (additive-error APMC).

Hérault et al.'s approximate probabilistic model checking: to estimate
``p = P(property)`` within additive error ``epsilon`` with confidence
``1 - delta``, it suffices to average

    N >= ln(2 / delta) / (2 * epsilon^2)

i.i.d. Bernoulli samples.  This gives simulation a *guarantee* — the
statistical counterpart of the paper's exhaustive guarantees, included
here because the paper positions itself against statistical model
checking (its reference [13]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["hoeffding_sample_size", "ApmcResult", "approximate_probability"]


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Samples sufficient for ``P(|estimate - p| > epsilon) < delta``."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


@dataclass(frozen=True)
class ApmcResult:
    """Outcome of an approximate probabilistic model checking run."""

    estimate: float
    samples: int
    epsilon: float
    delta: float

    @property
    def interval(self) -> tuple:
        """The (guaranteed-coverage) additive-error interval."""
        return (
            max(0.0, self.estimate - self.epsilon),
            min(1.0, self.estimate + self.epsilon),
        )

    def __str__(self) -> str:
        low, high = self.interval
        return (
            f"{self.estimate:.4g} +/- {self.epsilon} "
            f"(confidence {1 - self.delta:.2%}, {self.samples} samples)"
        )


def approximate_probability(
    trial: Callable[[np.random.Generator], bool],
    epsilon: float = 0.01,
    delta: float = 0.01,
    seed: Optional[int] = 0,
    batch: int = 4096,
) -> ApmcResult:
    """Estimate ``P(trial succeeds)`` with a Hoeffding guarantee.

    ``trial`` receives a ``numpy`` generator and returns a boolean
    outcome of one sampled path.
    """
    needed = hoeffding_sample_size(epsilon, delta)
    rng = np.random.default_rng(seed)
    successes = 0
    done = 0
    while done < needed:
        chunk = min(batch, needed - done)
        successes += sum(1 for _ in range(chunk) if trial(rng))
        done += chunk
    return ApmcResult(successes / needed, needed, epsilon, delta)
