"""repro — Statistical guarantees of performance for MIMO designs.

A from-scratch reproduction of Kumar & Vasudevan (DSN 2010):
probabilistic model checking of MIMO RTL designs.  RTL blocks with
quantization and channel noise become discrete-time Markov chains;
BER-like metrics become pCTL properties; property-preserving reductions
(lumping, bisimulation, symmetry) keep the state spaces tractable; and
an explicit-state model checker — cross-checked by a from-scratch
BDD/MTBDD symbolic engine — returns exact answers where Monte-Carlo
simulation only returns estimates.

Quick start::

    from repro import PerformanceAnalyzer

    analyzer = PerformanceAnalyzer.for_viterbi()
    print(analyzer.best_case(300))    # P1:  P=? [ G<=300 !flag ]
    print(analyzer.average_case(300)) # P2:  R=? [ I=300 ]
    print(analyzer.ber())             # BER: S=? [ flag ]

Solver backends are selectable through :class:`repro.engine.SolverConfig`
(direct, LU-cached, power, Jacobi, Gauss-Seidel), and scenario sweeps
fan across workers with :func:`repro.engine.sweep`::

    from repro import SolverConfig, check
    check(chain, "P=? [ F done ]", config=SolverConfig(method="jacobi"))

Subpackages
-----------
``repro.core``     — metrics, analyzer, verified reductions
``repro.engine``   — unified solver engine, caches, scenario sweeps
``repro.dtmc``     — explicit-state DTMC engine + builder
``repro.pctl``     — pCTL syntax, parser, model checker
``repro.prog``     — guarded-command modeling language
``repro.symbolic`` — BDD/MTBDD engine (PRISM-style substrate)
``repro.comm``     — modulation, channels, quantizers, BER theory
``repro.viterbi``  — Viterbi decoder case study (Sections IV-A/C)
``repro.mimo``     — MIMO ML detector case study (Section IV-B)
``repro.sim``      — Monte-Carlo baseline with confidence intervals
``repro.smc``      — statistical model checking (Hoeffding, SPRT)
``repro.zoo``      — scenario model zoo + sweep/survey CLI
``repro.store``    — persistent guarantee store (sqlite result cache)
``repro.resilience`` — fault-tolerant sweep fabric (retries, deadlines,
crash recovery, guarantee validation, chaos injection)
"""

from .core import Guarantee, PerformanceAnalyzer
from .dtmc import DTMC, build_dtmc, build_iid_dtmc, dtmc_from_dict
from .engine import (
    Engine,
    SmcConfig,
    SolverConfig,
    grid,
    sweep,
    sweep_check,
    sweep_values,
)
from .pctl import check, parse_formula
from .smc import smc_decide, smc_estimate
from . import zoo
from . import store
from . import resilience
from .resilience import (
    DeadlinePolicy,
    FaultInjector,
    RetryPolicy,
    SweepReport,
    validate_guarantee,
)
from .store import ResultStore

__version__ = "1.5.0"

__all__ = [
    "Guarantee",
    "PerformanceAnalyzer",
    "DTMC",
    "build_dtmc",
    "build_iid_dtmc",
    "dtmc_from_dict",
    "Engine",
    "SmcConfig",
    "SolverConfig",
    "grid",
    "sweep",
    "sweep_check",
    "sweep_values",
    "check",
    "parse_formula",
    "smc_decide",
    "smc_estimate",
    "zoo",
    "store",
    "ResultStore",
    "resilience",
    "RetryPolicy",
    "DeadlinePolicy",
    "SweepReport",
    "FaultInjector",
    "validate_guarantee",
    "__version__",
]
