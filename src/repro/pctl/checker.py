"""pCTL model checker over explicit-state DTMCs.

Implements the standard algorithms (Hansson & Jonsson; Baier & Katoen,
*Principles of Model Checking*, ch. 10):

* bounded operators by iterated sparse matrix-vector products,
* unbounded until via the Prob0/Prob1 graph precomputations plus a
  linear solve on the remaining states,
* instantaneous / cumulative / long-run rewards via the transient and
  steady-state solvers of :mod:`repro.dtmc`,
* reachability rewards with the standard infinite-value treatment for
  states that do not reach the target almost surely.

Every linear solve routes through a :class:`repro.engine.Engine`, so
the backend (direct, LU-cached, power, Jacobi, Gauss-Seidel) is
selectable via :class:`repro.engine.SolverConfig` and factorizations,
Prob0/Prob1 sets and long-run structure are reused across the
properties checked by one :class:`ModelChecker`.

The public entry point is :func:`check` (or the :class:`ModelChecker`
class when several properties are checked against one chain —
:meth:`ModelChecker.check_many` batches them over shared caches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..dtmc import DTMC
from ..dtmc.transient import (
    bounded_invariance,
    bounded_reachability,
)
from ..engine import Engine, SolverConfig, default_engine
from .ast import (
    And,
    Bound,
    Cumulative,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Instantaneous,
    Label,
    LongRunReward,
    Next,
    Not,
    Or,
    PathFormula,
    ProbQuery,
    ReachReward,
    RewardPath,
    RewardQuery,
    StateFormula,
    SteadyQuery,
    TrueFormula,
    Until,
    VarComparison,
    WeakUntil,
)
from .parser import parse_formula

__all__ = ["CheckResult", "ModelChecker", "check", "PctlSemanticsError"]


class PctlSemanticsError(ValueError):
    """Raised when a formula cannot be interpreted over the given chain."""


@dataclass
class CheckResult:
    """Result of checking one property.

    Attributes
    ----------
    formula:
        The checked formula (parsed AST).
    value:
        The result *from the initial distribution*: a probability or
        expected reward for ``=?`` queries, a bool for bounded
        operators.
    vector:
        Per-state values: probabilities/rewards (float array) for
        queries, satisfaction (bool array) for boolean formulas.
    """

    formula: StateFormula
    value: Union[float, bool]
    vector: np.ndarray

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        if isinstance(self.value, (bool, np.bool_)):
            return bool(self.value)
        raise TypeError(
            "numeric query result; compare .value explicitly instead"
        )


class ModelChecker:
    """Checks pCTL properties against one DTMC.

    Parameters
    ----------
    chain:
        The model.  Labels referenced by formulas must either exist on
        the chain or be resolvable as state-variable lookups (states
        that are mappings or have named attributes, e.g. namedtuples).
    engine:
        A :class:`repro.engine.Engine` to route all linear solves
        through.  Sharing one engine across checkers (or reusing one
        checker) shares LU factorizations, Prob0/Prob1 precomputations
        and long-run structure between properties.
    config:
        Shorthand when no engine is shared: a
        :class:`repro.engine.SolverConfig` (or bare method name such as
        ``"gauss-seidel"``) for a private engine.
    """

    def __init__(
        self,
        chain: DTMC,
        engine: Optional[Engine] = None,
        config: Union[SolverConfig, str, None] = None,
    ) -> None:
        self.chain = chain
        self.engine = default_engine(config, engine)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check(self, formula: Union[str, StateFormula]) -> CheckResult:
        """Check ``formula`` and return the result from the initial states."""
        if isinstance(formula, str):
            formula = parse_formula(formula)
        if isinstance(formula, ProbQuery):
            vector = self.path_probability(formula.path)
            return self._finish_query(formula, vector, formula.bound)
        if isinstance(formula, SteadyQuery):
            vector = self._steady_vector(formula.formula)
            return self._finish_query(formula, vector, formula.bound)
        if isinstance(formula, RewardQuery):
            vector = self.reward_value(formula.path, formula.reward)
            return self._finish_query(formula, vector, formula.bound)
        sat = self.satisfaction(formula)
        init = self.chain.initial_states()
        value = bool(all(sat[i] for i in init))
        return CheckResult(formula, value, sat)

    def check_many(
        self, formulas: Iterable[Union[str, StateFormula]]
    ) -> List[CheckResult]:
        """Check a batch of properties against the chain.

        The properties share this checker's engine, so the expensive
        per-chain work — LU factorizations, Prob0/Prob1 graph
        precomputations, BSCC decomposition, stationary distributions —
        is performed at most once per ``(chain, target-set)`` and
        reused across the whole batch.  Results are returned in input
        order.
        """
        return [self.check(formula) for formula in formulas]

    def _finish_query(
        self, formula: StateFormula, vector: np.ndarray, bound: Bound
    ) -> CheckResult:
        # Restrict to supported initial states so that infinite rewards on
        # unreachable states do not produce inf * 0 = nan.
        init = self.chain.initial_distribution
        mask = init > 0
        initial_value = float(vector[mask] @ init[mask])
        if bound.is_query():
            return CheckResult(formula, initial_value, vector)
        return CheckResult(formula, bound.holds(initial_value), vector)

    # ------------------------------------------------------------------
    # State formulas -> boolean satisfaction vectors
    # ------------------------------------------------------------------
    def satisfaction(self, formula: StateFormula) -> np.ndarray:
        """Boolean satisfaction vector of a state formula."""
        chain = self.chain
        if isinstance(formula, TrueFormula):
            return np.ones(chain.num_states, dtype=bool)
        if isinstance(formula, FalseFormula):
            return np.zeros(chain.num_states, dtype=bool)
        if isinstance(formula, Label):
            return self._atom_vector(formula.name)
        if isinstance(formula, VarComparison):
            values = self._variable_values(formula.name)
            return np.fromiter(
                (formula.evaluate(v) for v in values),
                dtype=bool,
                count=chain.num_states,
            )
        if isinstance(formula, Not):
            return ~self.satisfaction(formula.operand)
        if isinstance(formula, And):
            return self.satisfaction(formula.left) & self.satisfaction(formula.right)
        if isinstance(formula, Or):
            return self.satisfaction(formula.left) | self.satisfaction(formula.right)
        if isinstance(formula, Implies):
            return ~self.satisfaction(formula.left) | self.satisfaction(formula.right)
        if isinstance(formula, ProbQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self.path_probability(formula.path)
            return self._bound_vector(vector, formula.bound)
        if isinstance(formula, SteadyQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self._steady_vector(formula.formula)
            return self._bound_vector(vector, formula.bound)
        if isinstance(formula, RewardQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self.reward_value(formula.path, formula.reward)
            return self._bound_vector(vector, formula.bound)
        raise PctlSemanticsError(f"unsupported state formula {formula!r}")

    @staticmethod
    def _bound_vector(vector: np.ndarray, bound: Bound) -> np.ndarray:
        ops = {
            "<=": vector <= bound.threshold,
            "<": vector < bound.threshold,
            ">=": vector >= bound.threshold,
            ">": vector > bound.threshold,
            "=": vector == bound.threshold,
        }
        return ops[bound.op]

    def _atom_vector(self, name: str) -> np.ndarray:
        chain = self.chain
        if name in chain.labels:
            return chain.label_vector(name)
        # Fall back to a boolean state variable.
        values = self._variable_values(name)
        return np.fromiter(
            (bool(v) for v in values), dtype=bool, count=chain.num_states
        )

    def _variable_values(self, name: str) -> Sequence[Any]:
        chain = self.chain
        if chain.states is None:
            raise PctlSemanticsError(
                f"{name!r} is not a label and the chain carries no state"
                " objects to look it up on"
            )
        probe = chain.states[0]
        if isinstance(probe, Mapping):
            getter = lambda s: s[name]  # noqa: E731
        elif hasattr(probe, name):
            getter = lambda s: getattr(s, name)  # noqa: E731
        else:
            raise PctlSemanticsError(
                f"cannot resolve atom {name!r}: not a chain label and not a"
                f" state variable of {type(probe).__name__}"
            )
        try:
            return [getter(s) for s in chain.states]
        except (KeyError, AttributeError) as exc:
            raise PctlSemanticsError(
                f"state variable {name!r} missing on some states"
            ) from exc

    # ------------------------------------------------------------------
    # Path formulas -> per-state probability vectors
    # ------------------------------------------------------------------
    def path_probability(self, path: PathFormula) -> np.ndarray:
        chain = self.chain
        if isinstance(path, Next):
            target = self.satisfaction(path.operand).astype(np.float64)
            return chain.transition_matrix @ target
        if isinstance(path, Eventually):
            return self._until(
                np.ones(chain.num_states, dtype=bool),
                self.satisfaction(path.operand),
                path.bound,
                lower=path.lower,
            )
        if isinstance(path, Globally):
            # G[a,b] f == !(F[a,b] !f)
            inner = self.satisfaction(path.operand)
            if path.lower == 0 and path.bound is not None:
                return bounded_invariance(
                    chain, inner, path.bound, engine=self.engine
                )
            reach_bad = self._until(
                np.ones(chain.num_states, dtype=bool),
                ~inner,
                path.bound,
                lower=path.lower,
            )
            return 1.0 - reach_bad
        if isinstance(path, Until):
            return self._until(
                self.satisfaction(path.left),
                self.satisfaction(path.right),
                path.bound,
                lower=path.lower,
            )
        if isinstance(path, WeakUntil):
            # left W right  ==  !((left & !right) U (!left & !right)):
            # the only way to violate it is to leave `left` before
            # `right` has occurred.
            left = self.satisfaction(path.left)
            right = self.satisfaction(path.right)
            violate = self._until(left & ~right, ~left & ~right, path.bound)
            return 1.0 - violate
        raise PctlSemanticsError(f"unsupported path formula {path!r}")

    def _until(
        self,
        left: np.ndarray,
        right: np.ndarray,
        bound: Optional[int],
        lower: int = 0,
    ) -> np.ndarray:
        """``P(left U[lower, bound] right)`` per state.

        For a positive ``lower``, the window phase (a standard bounded
        or unbounded until over the remaining horizon) is prefixed by
        ``lower`` "ramp" steps during which the path must stay inside
        ``left`` and ``right`` does not yet count.
        """
        chain = self.chain
        if bound is not None and lower > bound:
            raise PctlSemanticsError(
                f"empty step window [{lower},{bound}]"
            )
        if bound is not None:
            window = bounded_reachability(
                chain, right, bound - lower, avoid=~left, engine=self.engine
            )
        else:
            window = self._unbounded_until(left, right)
        if lower == 0:
            return window
        value = window
        matrix = chain.transition_matrix
        left_f = left.astype(np.float64)
        for _ in range(lower):
            value = left_f * (matrix @ value)
        self.engine.count_matvecs(lower)
        return value

    def _unbounded_until(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """P(left U right): Prob0/Prob1 + linear solve, on the engine."""
        return self.engine.unbounded_until(self.chain, left, right)

    # ------------------------------------------------------------------
    # Steady-state operator
    # ------------------------------------------------------------------
    def _steady_vector(self, formula: StateFormula) -> np.ndarray:
        """``S=? [f]``: long-run probability of residing in ``f`` states.

        For the (common) single-BSCC case this is independent of the
        start state; in general it is computed from the chain's initial
        distribution, so the per-state vector is constant.
        """
        sat = self.satisfaction(formula)
        pi = self.engine.long_run_distribution(self.chain)
        value = float(pi @ sat.astype(np.float64))
        return np.full(self.chain.num_states, value)

    # ------------------------------------------------------------------
    # Reward operators
    # ------------------------------------------------------------------
    def _reward_vector(self, name: Optional[str]) -> np.ndarray:
        chain = self.chain
        if name is not None:
            return chain.reward_vector(name)
        if len(chain.rewards) == 1:
            return next(iter(chain.rewards.values()))
        raise PctlSemanticsError(
            f"chain has {len(chain.rewards)} reward structures; name one with"
            ' R{"name"}=? [...]'
        )

    def reward_value(self, path: RewardPath, reward: Optional[str]) -> np.ndarray:
        chain = self.chain
        rho = self._reward_vector(reward)
        if isinstance(path, Instantaneous):
            # Per-state vector: expected reward t steps after starting there.
            pi_t = rho.copy()
            matrix = chain.transition_matrix
            for _ in range(path.time):
                pi_t = matrix @ pi_t
            self.engine.count_matvecs(path.time)
            return pi_t
        if isinstance(path, Cumulative):
            total = np.zeros(chain.num_states)
            current = rho.copy()
            matrix = chain.transition_matrix
            for _ in range(path.time):
                total += current
                current = matrix @ current
            self.engine.count_matvecs(path.time)
            return total
        if isinstance(path, LongRunReward):
            pi = self.engine.long_run_distribution(chain)
            value = float(pi @ rho)
            return np.full(chain.num_states, value)
        if isinstance(path, ReachReward):
            return self._reachability_reward(rho, self.satisfaction(path.target))
        raise PctlSemanticsError(f"unsupported reward path {path!r}")

    def _reachability_reward(
        self, rho: np.ndarray, target: np.ndarray
    ) -> np.ndarray:
        """``R=? [F target]`` with the standard infinity semantics."""
        return self.engine.reachability_reward(self.chain, rho, target)


def check(
    chain: DTMC,
    formula: Union[str, StateFormula],
    *,
    engine: Optional[Engine] = None,
    config: Union[SolverConfig, str, None] = None,
) -> CheckResult:
    """Check one pCTL property against ``chain``.

    Convenience wrapper around :class:`ModelChecker`:

    >>> from repro.dtmc import dtmc_from_dict
    >>> chain = dtmc_from_dict(
    ...     {"a": {"a": 0.5, "b": 0.5}, "b": {"b": 1.0}},
    ...     initial="a", labels={"done": ["b"]})
    >>> check(chain, "P=? [ F<=2 done ]").value
    0.75

    ``engine``/``config`` select the solver backend exactly as for
    :class:`ModelChecker`; pass a shared engine to reuse factorizations
    across calls.
    """
    return ModelChecker(chain, engine=engine, config=config).check(formula)
