"""pCTL model checker over explicit-state DTMCs.

Implements the standard algorithms (Hansson & Jonsson; Baier & Katoen,
*Principles of Model Checking*, ch. 10):

* bounded operators by iterated sparse matrix-vector products,
* unbounded until via the Prob0/Prob1 graph precomputations plus a
  sparse linear solve on the remaining states,
* instantaneous / cumulative / long-run rewards via the transient and
  steady-state solvers of :mod:`repro.dtmc`,
* reachability rewards with the standard infinite-value treatment for
  states that do not reach the target almost surely.

The public entry point is :func:`check` (or the :class:`ModelChecker`
class when several properties are checked against one chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..dtmc import DTMC
from ..dtmc.graph import backward_reachable
from ..dtmc.steady_state import long_run_distribution
from ..dtmc.transient import (
    bounded_invariance,
    bounded_reachability,
    cumulative_reward,
    distribution_at,
    instantaneous_reward,
)
from .ast import (
    And,
    Bound,
    Cumulative,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Instantaneous,
    Label,
    LongRunReward,
    Next,
    Not,
    Or,
    PathFormula,
    ProbQuery,
    ReachReward,
    RewardPath,
    RewardQuery,
    StateFormula,
    SteadyQuery,
    TrueFormula,
    Until,
    VarComparison,
    WeakUntil,
)
from .parser import parse_formula

__all__ = ["CheckResult", "ModelChecker", "check", "PctlSemanticsError"]


class PctlSemanticsError(ValueError):
    """Raised when a formula cannot be interpreted over the given chain."""


@dataclass
class CheckResult:
    """Result of checking one property.

    Attributes
    ----------
    formula:
        The checked formula (parsed AST).
    value:
        The result *from the initial distribution*: a probability or
        expected reward for ``=?`` queries, a bool for bounded
        operators.
    vector:
        Per-state values: probabilities/rewards (float array) for
        queries, satisfaction (bool array) for boolean formulas.
    """

    formula: StateFormula
    value: Union[float, bool]
    vector: np.ndarray

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        if isinstance(self.value, (bool, np.bool_)):
            return bool(self.value)
        raise TypeError(
            "numeric query result; compare .value explicitly instead"
        )


class ModelChecker:
    """Checks pCTL properties against one DTMC.

    Parameters
    ----------
    chain:
        The model.  Labels referenced by formulas must either exist on
        the chain or be resolvable as state-variable lookups (states
        that are mappings or have named attributes, e.g. namedtuples).
    """

    def __init__(self, chain: DTMC) -> None:
        self.chain = chain

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check(self, formula: Union[str, StateFormula]) -> CheckResult:
        """Check ``formula`` and return the result from the initial states."""
        if isinstance(formula, str):
            formula = parse_formula(formula)
        if isinstance(formula, ProbQuery):
            vector = self.path_probability(formula.path)
            return self._finish_query(formula, vector, formula.bound)
        if isinstance(formula, SteadyQuery):
            vector = self._steady_vector(formula.formula)
            return self._finish_query(formula, vector, formula.bound)
        if isinstance(formula, RewardQuery):
            vector = self.reward_value(formula.path, formula.reward)
            return self._finish_query(formula, vector, formula.bound)
        sat = self.satisfaction(formula)
        init = self.chain.initial_states()
        value = bool(all(sat[i] for i in init))
        return CheckResult(formula, value, sat)

    def _finish_query(
        self, formula: StateFormula, vector: np.ndarray, bound: Bound
    ) -> CheckResult:
        # Restrict to supported initial states so that infinite rewards on
        # unreachable states do not produce inf * 0 = nan.
        init = self.chain.initial_distribution
        mask = init > 0
        initial_value = float(vector[mask] @ init[mask])
        if bound.is_query():
            return CheckResult(formula, initial_value, vector)
        return CheckResult(formula, bound.holds(initial_value), vector)

    # ------------------------------------------------------------------
    # State formulas -> boolean satisfaction vectors
    # ------------------------------------------------------------------
    def satisfaction(self, formula: StateFormula) -> np.ndarray:
        """Boolean satisfaction vector of a state formula."""
        chain = self.chain
        if isinstance(formula, TrueFormula):
            return np.ones(chain.num_states, dtype=bool)
        if isinstance(formula, FalseFormula):
            return np.zeros(chain.num_states, dtype=bool)
        if isinstance(formula, Label):
            return self._atom_vector(formula.name)
        if isinstance(formula, VarComparison):
            values = self._variable_values(formula.name)
            return np.fromiter(
                (formula.evaluate(v) for v in values),
                dtype=bool,
                count=chain.num_states,
            )
        if isinstance(formula, Not):
            return ~self.satisfaction(formula.operand)
        if isinstance(formula, And):
            return self.satisfaction(formula.left) & self.satisfaction(formula.right)
        if isinstance(formula, Or):
            return self.satisfaction(formula.left) | self.satisfaction(formula.right)
        if isinstance(formula, Implies):
            return ~self.satisfaction(formula.left) | self.satisfaction(formula.right)
        if isinstance(formula, ProbQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self.path_probability(formula.path)
            return self._bound_vector(vector, formula.bound)
        if isinstance(formula, SteadyQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self._steady_vector(formula.formula)
            return self._bound_vector(vector, formula.bound)
        if isinstance(formula, RewardQuery):
            if formula.bound.is_query():
                raise PctlSemanticsError(
                    "'=?' query used as a nested state formula; give it a bound"
                )
            vector = self.reward_value(formula.path, formula.reward)
            return self._bound_vector(vector, formula.bound)
        raise PctlSemanticsError(f"unsupported state formula {formula!r}")

    @staticmethod
    def _bound_vector(vector: np.ndarray, bound: Bound) -> np.ndarray:
        ops = {
            "<=": vector <= bound.threshold,
            "<": vector < bound.threshold,
            ">=": vector >= bound.threshold,
            ">": vector > bound.threshold,
            "=": vector == bound.threshold,
        }
        return ops[bound.op]

    def _atom_vector(self, name: str) -> np.ndarray:
        chain = self.chain
        if name in chain.labels:
            return chain.label_vector(name)
        # Fall back to a boolean state variable.
        values = self._variable_values(name)
        return np.fromiter(
            (bool(v) for v in values), dtype=bool, count=chain.num_states
        )

    def _variable_values(self, name: str) -> Sequence[Any]:
        chain = self.chain
        if chain.states is None:
            raise PctlSemanticsError(
                f"{name!r} is not a label and the chain carries no state"
                " objects to look it up on"
            )
        probe = chain.states[0]
        if isinstance(probe, Mapping):
            getter = lambda s: s[name]  # noqa: E731
        elif hasattr(probe, name):
            getter = lambda s: getattr(s, name)  # noqa: E731
        else:
            raise PctlSemanticsError(
                f"cannot resolve atom {name!r}: not a chain label and not a"
                f" state variable of {type(probe).__name__}"
            )
        try:
            return [getter(s) for s in chain.states]
        except (KeyError, AttributeError) as exc:
            raise PctlSemanticsError(
                f"state variable {name!r} missing on some states"
            ) from exc

    # ------------------------------------------------------------------
    # Path formulas -> per-state probability vectors
    # ------------------------------------------------------------------
    def path_probability(self, path: PathFormula) -> np.ndarray:
        chain = self.chain
        if isinstance(path, Next):
            target = self.satisfaction(path.operand).astype(np.float64)
            return chain.transition_matrix @ target
        if isinstance(path, Eventually):
            return self._until(
                np.ones(chain.num_states, dtype=bool),
                self.satisfaction(path.operand),
                path.bound,
                lower=path.lower,
            )
        if isinstance(path, Globally):
            # G[a,b] f == !(F[a,b] !f)
            inner = self.satisfaction(path.operand)
            if path.lower == 0 and path.bound is not None:
                return bounded_invariance(chain, inner, path.bound)
            reach_bad = self._until(
                np.ones(chain.num_states, dtype=bool),
                ~inner,
                path.bound,
                lower=path.lower,
            )
            return 1.0 - reach_bad
        if isinstance(path, Until):
            return self._until(
                self.satisfaction(path.left),
                self.satisfaction(path.right),
                path.bound,
                lower=path.lower,
            )
        if isinstance(path, WeakUntil):
            # left W right  ==  !((left & !right) U (!left & !right)):
            # the only way to violate it is to leave `left` before
            # `right` has occurred.
            left = self.satisfaction(path.left)
            right = self.satisfaction(path.right)
            violate = self._until(left & ~right, ~left & ~right, path.bound)
            return 1.0 - violate
        raise PctlSemanticsError(f"unsupported path formula {path!r}")

    def _until(
        self,
        left: np.ndarray,
        right: np.ndarray,
        bound: Optional[int],
        lower: int = 0,
    ) -> np.ndarray:
        """``P(left U[lower, bound] right)`` per state.

        For a positive ``lower``, the window phase (a standard bounded
        or unbounded until over the remaining horizon) is prefixed by
        ``lower`` "ramp" steps during which the path must stay inside
        ``left`` and ``right`` does not yet count.
        """
        chain = self.chain
        if bound is not None and lower > bound:
            raise PctlSemanticsError(
                f"empty step window [{lower},{bound}]"
            )
        if bound is not None:
            window = bounded_reachability(
                chain, right, bound - lower, avoid=~left
            )
        else:
            window = self._unbounded_until(left, right)
        if lower == 0:
            return window
        value = window
        matrix = chain.transition_matrix
        left_f = left.astype(np.float64)
        for _ in range(lower):
            value = left_f * (matrix @ value)
        return value

    def _unbounded_until(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """P(left U right) via Prob0/Prob1 + sparse linear solve."""
        chain = self.chain
        n = chain.num_states
        target_states = np.nonzero(right)[0]

        # Prob0: states that cannot reach `right` along `left`-paths.
        can_reach = self._constrained_backward(target_states, left & ~right)
        prob0 = np.ones(n, dtype=bool)
        prob0[list(can_reach)] = False

        # Prob1 = complement of states that, staying within left&!right,
        # can reach a Prob0 state (Baier & Katoen, Lemma 10.16).
        prob0_states = np.nonzero(prob0)[0]
        can_fail = self._constrained_backward(prob0_states, left & ~right)
        prob1 = np.zeros(n, dtype=bool)
        prob1[:] = True
        prob1[list(can_fail)] = False
        prob1[prob0_states] = False
        prob1 |= right  # target states trivially satisfy

        result = np.zeros(n)
        result[prob1] = 1.0

        unknown = np.nonzero(~prob0 & ~prob1)[0]
        if unknown.size:
            matrix = chain.transition_matrix
            sub = matrix[unknown][:, unknown]
            rhs = np.asarray(
                matrix[unknown][:, np.nonzero(prob1)[0]].sum(axis=1)
            ).ravel()
            identity = sparse.identity(unknown.size, format="csr")
            solution = sparse_linalg.spsolve((identity - sub).tocsc(), rhs)
            result[unknown] = np.clip(np.atleast_1d(solution), 0.0, 1.0)
        return result

    def _constrained_backward(
        self, targets: np.ndarray, through: np.ndarray
    ) -> set:
        """States that can reach ``targets`` moving only through ``through``
        states (the targets themselves need not satisfy ``through``)."""
        chain = self.chain
        transpose = chain.transition_matrix.tocsc()
        indptr, indices = transpose.indptr, transpose.indices
        seen = set(int(t) for t in targets)
        frontier = list(seen)
        while frontier:
            next_frontier = []
            for u in frontier:
                for v in indices[indptr[u] : indptr[u + 1]]:
                    v = int(v)
                    if v not in seen and through[v]:
                        seen.add(v)
                        next_frontier.append(v)
            frontier = next_frontier
        return seen

    # ------------------------------------------------------------------
    # Steady-state operator
    # ------------------------------------------------------------------
    def _steady_vector(self, formula: StateFormula) -> np.ndarray:
        """``S=? [f]``: long-run probability of residing in ``f`` states.

        For the (common) single-BSCC case this is independent of the
        start state; in general it is computed from the chain's initial
        distribution, so the per-state vector is constant.
        """
        sat = self.satisfaction(formula)
        pi = long_run_distribution(self.chain)
        value = float(pi @ sat.astype(np.float64))
        return np.full(self.chain.num_states, value)

    # ------------------------------------------------------------------
    # Reward operators
    # ------------------------------------------------------------------
    def _reward_vector(self, name: Optional[str]) -> np.ndarray:
        chain = self.chain
        if name is not None:
            return chain.reward_vector(name)
        if len(chain.rewards) == 1:
            return next(iter(chain.rewards.values()))
        raise PctlSemanticsError(
            f"chain has {len(chain.rewards)} reward structures; name one with"
            ' R{"name"}=? [...]'
        )

    def reward_value(self, path: RewardPath, reward: Optional[str]) -> np.ndarray:
        chain = self.chain
        rho = self._reward_vector(reward)
        if isinstance(path, Instantaneous):
            # Per-state vector: expected reward t steps after starting there.
            pi_t = rho.copy()
            matrix = chain.transition_matrix
            for _ in range(path.time):
                pi_t = matrix @ pi_t
            return pi_t
        if isinstance(path, Cumulative):
            total = np.zeros(chain.num_states)
            current = rho.copy()
            matrix = chain.transition_matrix
            for _ in range(path.time):
                total += current
                current = matrix @ current
            return total
        if isinstance(path, LongRunReward):
            pi = long_run_distribution(chain)
            value = float(pi @ rho)
            return np.full(chain.num_states, value)
        if isinstance(path, ReachReward):
            return self._reachability_reward(rho, self.satisfaction(path.target))
        raise PctlSemanticsError(f"unsupported reward path {path!r}")

    def _reachability_reward(
        self, rho: np.ndarray, target: np.ndarray
    ) -> np.ndarray:
        """``R=? [F target]`` with the standard infinity semantics."""
        chain = self.chain
        n = chain.num_states
        reach = self._unbounded_until(np.ones(n, dtype=bool), target)
        finite = reach >= 1.0 - 1e-12
        result = np.full(n, np.inf)
        result[target] = 0.0
        solve_states = np.nonzero(finite & ~target)[0]
        if solve_states.size:
            matrix = chain.transition_matrix
            sub = matrix[solve_states][:, solve_states]
            identity = sparse.identity(solve_states.size, format="csr")
            rhs = rho[solve_states]
            solution = sparse_linalg.spsolve((identity - sub).tocsc(), rhs)
            result[solve_states] = np.atleast_1d(solution)
        return result


def check(chain: DTMC, formula: Union[str, StateFormula]) -> CheckResult:
    """Check one pCTL property against ``chain``.

    Convenience wrapper around :class:`ModelChecker`:

    >>> from repro.dtmc import dtmc_from_dict
    >>> chain = dtmc_from_dict(
    ...     {"a": {"a": 0.5, "b": 0.5}, "b": {"b": 1.0}},
    ...     initial="a", labels={"done": ["b"]})
    >>> check(chain, "P=? [ F<=2 done ]").value
    0.75
    """
    return ModelChecker(chain).check(formula)
