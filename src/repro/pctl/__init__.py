"""Probabilistic Computation Tree Logic: syntax, parser, and model checker.

The property language the paper uses to state its BER-like performance
metrics (P1/P2/P3/C1), with PRISM-compatible surface syntax.
"""

from .ast import (
    And,
    Bound,
    Cumulative,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Instantaneous,
    Label,
    LongRunReward,
    Next,
    Not,
    Or,
    PathFormula,
    ProbQuery,
    ReachReward,
    RewardPath,
    RewardQuery,
    StateFormula,
    SteadyQuery,
    TrueFormula,
    Until,
    VarComparison,
    WeakUntil,
)
from .checker import CheckResult, ModelChecker, PctlSemanticsError, check
from .parser import PctlSyntaxError, parse_formula

__all__ = [
    "And",
    "Bound",
    "Cumulative",
    "Eventually",
    "FalseFormula",
    "Globally",
    "Implies",
    "Instantaneous",
    "Label",
    "LongRunReward",
    "Next",
    "Not",
    "Or",
    "PathFormula",
    "ProbQuery",
    "ReachReward",
    "RewardPath",
    "RewardQuery",
    "StateFormula",
    "SteadyQuery",
    "TrueFormula",
    "Until",
    "VarComparison",
    "WeakUntil",
    "CheckResult",
    "ModelChecker",
    "PctlSemanticsError",
    "check",
    "PctlSyntaxError",
    "parse_formula",
]
