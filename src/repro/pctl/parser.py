"""Parser for PRISM-style pCTL property strings.

Accepts the syntax used throughout the paper, e.g.::

    P=? [ G<=300 !flag ]
    R=? [ I=300 ]
    P=? [ F<=300 errcnt>1 ]
    P>=0.99 [ !flag U<=50 done ]
    S=? [ flag ]
    R{"errors"}=? [ C<=100 ]

Quoted labels (PRISM writes ``"flag"``) and bare identifiers are both
accepted.  The grammar is a small recursive-descent parser over a
hand-rolled tokenizer; precedence for state formulas is
``! > & > | > =>``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    And,
    Bound,
    Cumulative,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Instantaneous,
    Label,
    LongRunReward,
    Next,
    Not,
    Or,
    PathFormula,
    ProbQuery,
    ReachReward,
    RewardPath,
    RewardQuery,
    StateFormula,
    SteadyQuery,
    TrueFormula,
    Until,
    VarComparison,
    WeakUntil,
)

__all__ = ["parse_formula", "PctlSyntaxError"]


class PctlSyntaxError(ValueError):
    """Raised on malformed property strings."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\.\d+|\d+(?:[eE][+-]?\d+)?)
  | (?P<quoted>"[A-Za-z_][A-Za-z0-9_]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>=\?|<=|>=|!=|=>|[<>=!&|()\[\]{},])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PctlSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.advance()
            return True
        return False

    def expect(self, value: str) -> None:
        kind, got = self.advance()
        if got != value:
            raise PctlSyntaxError(
                f"expected {value!r} but found {got!r} in {self.text!r}"
            )

    def expect_kind(self, kind: str) -> str:
        got_kind, got = self.advance()
        if got_kind != kind:
            raise PctlSyntaxError(
                f"expected {kind} but found {got!r} in {self.text!r}"
            )
        return got

    # -- entry point ----------------------------------------------------
    def parse(self) -> StateFormula:
        formula = self.state_formula()
        if self.peek()[0] != "eof":
            raise PctlSyntaxError(
                f"trailing input {self.peek()[1]!r} in {self.text!r}"
            )
        return formula

    # -- state formulas ---------------------------------------------------
    def state_formula(self) -> StateFormula:
        return self.implies()

    def implies(self) -> StateFormula:
        left = self.disjunction()
        if self.accept("=>"):
            return Implies(left, self.implies())
        return left

    def disjunction(self) -> StateFormula:
        left = self.conjunction()
        while self.accept("|"):
            left = Or(left, self.conjunction())
        return left

    def conjunction(self) -> StateFormula:
        left = self.unary()
        while self.accept("&"):
            left = And(left, self.unary())
        return left

    def unary(self) -> StateFormula:
        kind, value = self.peek()
        if value == "!":
            self.advance()
            return Not(self.unary())
        if value == "(":
            self.advance()
            inner = self.state_formula()
            self.expect(")")
            return inner
        if value in ("P", "R", "S") and self._looks_like_operator():
            return self.quantified()
        return self.atom()

    def _looks_like_operator(self) -> bool:
        """Distinguish the P/R/S operators from identifiers named P/R/S.

        An operator is always followed by a bound (``=?``, ``>=`` ...)
        or, for R, a ``{`` reward designator.
        """
        nxt = self.tokens[self.position + 1][1]
        return nxt in ("=?", "<=", ">=", "<", ">", "=", "{")

    def atom(self) -> StateFormula:
        kind, value = self.advance()
        if kind == "quoted":
            name = value.strip('"')
            return self._maybe_comparison(name)
        if kind != "ident":
            raise PctlSyntaxError(
                f"expected an atomic proposition, found {value!r} in {self.text!r}"
            )
        if value == "true":
            return TrueFormula()
        if value == "false":
            return FalseFormula()
        return self._maybe_comparison(value)

    def _maybe_comparison(self, name: str) -> StateFormula:
        kind, value = self.peek()
        if value in ("<=", ">=", "!=", "<", ">", "="):
            # "=?" never reaches here: it is a single token.
            self.advance()
            number = float(self.expect_kind("number"))
            return VarComparison(name, value, number)
        return Label(name)

    # -- P / R / S operators -------------------------------------------
    def quantified(self) -> StateFormula:
        kind, operator = self.advance()
        if operator == "P":
            bound = self.bound()
            self.expect("[")
            path = self.path_formula()
            self.expect("]")
            return ProbQuery(path, bound)
        if operator == "S":
            bound = self.bound()
            self.expect("[")
            inner = self.state_formula()
            self.expect("]")
            return SteadyQuery(inner, bound)
        if operator == "R":
            reward: Optional[str] = None
            if self.accept("{"):
                token_kind, token = self.advance()
                if token_kind not in ("quoted", "ident"):
                    raise PctlSyntaxError(
                        f"expected reward name, found {token!r} in {self.text!r}"
                    )
                reward = token.strip('"')
                self.expect("}")
            bound = self.bound()
            self.expect("[")
            path = self.reward_path()
            self.expect("]")
            return RewardQuery(path, bound, reward)
        raise PctlSyntaxError(f"unknown operator {operator!r}")

    def bound(self) -> Bound:
        kind, value = self.advance()
        if value == "=?":
            return Bound(op=None)
        if value in ("<=", ">=", "<", ">", "="):
            number = float(self.expect_kind("number"))
            return Bound(op=value, threshold=number)
        raise PctlSyntaxError(
            f"expected a bound ('=?', '>=p', ...), found {value!r} in {self.text!r}"
        )

    # -- path formulas ---------------------------------------------------
    def path_formula(self) -> PathFormula:
        kind, value = self.peek()
        if value == "X":
            self.advance()
            return Next(self.state_formula())
        if value == "F":
            self.advance()
            lower, bound = self.step_window()
            return Eventually(self.state_formula(), bound, lower)
        if value == "G":
            self.advance()
            lower, bound = self.step_window()
            return Globally(self.state_formula(), bound, lower)
        left = self.state_formula()
        if self.accept("U"):
            lower, bound = self.step_window()
            right = self.state_formula()
            return Until(left, right, bound, lower)
        if self.accept("W"):
            lower, bound = self.step_window()
            if lower != 0:
                raise PctlSyntaxError(
                    "interval bounds are not defined for weak until"
                )
            right = self.state_formula()
            return WeakUntil(left, right, bound)
        raise PctlSyntaxError(
            f"expected 'U' or 'W' in path formula of {self.text!r}"
        )

    def step_window(self) -> Tuple[int, Optional[int]]:
        """Parse ``<=b``, ``[a,b]``, or nothing -> ``(lower, upper)``."""
        if self.accept("<="):
            return 0, self._int_token()
        if self.peek()[1] == "[" and self.tokens[self.position + 1][0] == "number":
            self.advance()  # '['
            lower = self._int_token()
            self.expect(",")
            upper = self._int_token()
            self.expect("]")
            if upper < lower:
                raise PctlSyntaxError(
                    f"empty step window [{lower},{upper}]"
                )
            return lower, upper
        return 0, None

    def _int_token(self) -> int:
        number = self.expect_kind("number")
        value = float(number)
        if value != int(value):
            raise PctlSyntaxError(f"step bound must be an integer, got {number}")
        return int(value)

    # -- reward path formulas ---------------------------------------------
    def reward_path(self) -> RewardPath:
        kind, value = self.peek()
        if value == "I":
            self.advance()
            self.expect("=")
            return Instantaneous(self._int_token())
        if value == "C":
            self.advance()
            self.expect("<=")
            return Cumulative(self._int_token())
        if value == "F":
            self.advance()
            return ReachReward(self.state_formula())
        if value == "S":
            self.advance()
            return LongRunReward()
        raise PctlSyntaxError(
            f"expected a reward path (I=t, C<=t, F f, S), found {value!r}"
        )


def parse_formula(text: str) -> StateFormula:
    """Parse a PRISM-style pCTL property string into an AST.

    >>> parse_formula("P=? [ G<=300 !flag ]")
    ProbQuery(path=Globally(operand=Not(operand=Label(name='flag')), bound=300, lower=0), bound=Bound(op=None, threshold=None))
    """
    return _Parser(text).parse()
