"""Abstract syntax of pCTL (Probabilistic Computation Tree Logic).

The fragment implemented is the one PRISM exposes and the paper uses
(Hansson & Jonsson's pCTL plus the reward extension of Andova et al.):

State formulas
    ``true`` | ``false`` | label | ``var op const`` | ``!f`` | ``f & g``
    | ``f | g`` | ``f => g`` | ``P bowtie [path]`` | ``S bowtie [f]``
    | ``R bowtie [rpath]``

Path formulas
    ``X f`` | ``f U g`` | ``f U<=t g`` | ``F f`` | ``F<=t f`` | ``G f``
    | ``G<=t f``

Reward path formulas
    ``I=t`` (instantaneous) | ``C<=t`` (cumulative) | ``F f``
    (reachability reward) | ``S`` (long-run average)

``bowtie`` is either a numeric query (``=?``) or a probability/reward
bound (``>= 0.99`` etc.).  The paper's properties are:

* P1 best case:     ``P=? [ G<=T !flag ]``
* P2 average case:  ``R=? [ I=T ]``
* P3 worst case:    ``P=? [ F<=T errcnt>1 ]``
* C1 convergence:   ``R=? [ I=T ]`` on the convergence model
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "StateFormula",
    "PathFormula",
    "RewardPath",
    "TrueFormula",
    "FalseFormula",
    "Label",
    "VarComparison",
    "Not",
    "And",
    "Or",
    "Implies",
    "ProbQuery",
    "SteadyQuery",
    "RewardQuery",
    "Next",
    "Until",
    "WeakUntil",
    "Eventually",
    "Globally",
    "Instantaneous",
    "Cumulative",
    "ReachReward",
    "LongRunReward",
    "Bound",
    "COMPARISON_OPS",
]

#: Comparison operators allowed in atomic variable predicates and bounds.
COMPARISON_OPS = ("<=", ">=", "!=", "<", ">", "=")


# ----------------------------------------------------------------------
# Bounds (the "bowtie" of P / R / S operators)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Bound:
    """A probability/reward bound such as ``>= 0.99``; ``None`` op means ``=?``."""

    op: Optional[str]
    threshold: Optional[float] = None

    def is_query(self) -> bool:
        """True for numeric queries (``=?``)."""
        return self.op is None

    def holds(self, value: float) -> bool:
        """Evaluate ``value bowtie threshold``."""
        if self.op is None:
            raise ValueError("'=?' query has no boolean value")
        table = {
            "<=": value <= self.threshold,
            "<": value < self.threshold,
            ">=": value >= self.threshold,
            ">": value > self.threshold,
            "=": value == self.threshold,
        }
        return bool(table[self.op])

    def __str__(self) -> str:
        if self.op is None:
            return "=?"
        return f"{self.op}{self.threshold}"


QUERY = Bound(op=None)


# ----------------------------------------------------------------------
# State formulas
# ----------------------------------------------------------------------
class StateFormula:
    """Base class for state formulas."""

    def __and__(self, other: "StateFormula") -> "And":
        return And(self, other)

    def __or__(self, other: "StateFormula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(StateFormula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(StateFormula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Label(StateFormula):
    """An atomic proposition: a chain label or a boolean state variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarComparison(StateFormula):
    """Comparison of a state variable against a constant, e.g. ``errcnt > 1``."""

    name: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, variable_value: float) -> bool:
        table = {
            "<=": variable_value <= self.value,
            "<": variable_value < self.value,
            ">=": variable_value >= self.value,
            ">": variable_value > self.value,
            "=": variable_value == self.value,
            "!=": variable_value != self.value,
        }
        return bool(table[self.op])

    def __str__(self) -> str:
        return f"{self.name}{self.op}{self.value:g}"


@dataclass(frozen=True)
class Not(StateFormula):
    operand: StateFormula

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class And(StateFormula):
    left: StateFormula
    right: StateFormula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(StateFormula):
    left: StateFormula
    right: StateFormula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(StateFormula):
    left: StateFormula
    right: StateFormula

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


# ----------------------------------------------------------------------
# Path formulas
# ----------------------------------------------------------------------
class PathFormula:
    """Base class for path formulas appearing inside ``P bowtie [..]``."""


@dataclass(frozen=True)
class Next(PathFormula):
    operand: StateFormula

    def __str__(self) -> str:
        return f"X {self.operand}"


def _window_suffix(lower: int, bound: Optional[int]) -> str:
    """Render a step window: ``""``, ``<=b``, or ``[a,b]``."""
    if lower == 0:
        return "" if bound is None else f"<={bound}"
    upper = "inf" if bound is None else str(bound)
    return f"[{lower},{upper}]"


@dataclass(frozen=True)
class Until(PathFormula):
    """``left U right``, ``left U<=b right``, or ``left U[a,b] right``.

    ``bound=None`` means no upper bound; ``lower`` (default 0) is the
    earliest step at which ``right`` may count (PRISM's interval
    bound).
    """

    left: StateFormula
    right: StateFormula
    bound: Optional[int] = None
    lower: int = 0

    def __str__(self) -> str:
        return f"{self.left} U{_window_suffix(self.lower, self.bound)} {self.right}"


@dataclass(frozen=True)
class WeakUntil(PathFormula):
    """``left W right``: ``left`` holds until ``right`` — or forever.

    Equivalent to ``(G left) | (left U right)``; the bounded form
    requires ``left`` to hold up to the bound unless ``right`` occurred
    earlier.
    """

    left: StateFormula
    right: StateFormula
    bound: Optional[int] = None

    def __str__(self) -> str:
        w = "W" if self.bound is None else f"W<={self.bound}"
        return f"{self.left} {w} {self.right}"


@dataclass(frozen=True)
class Eventually(PathFormula):
    """``F f``, ``F<=b f``, or ``F[a,b] f`` (satisfaction within a window)."""

    operand: StateFormula
    bound: Optional[int] = None
    lower: int = 0

    def __str__(self) -> str:
        return f"F{_window_suffix(self.lower, self.bound)} {self.operand}"


@dataclass(frozen=True)
class Globally(PathFormula):
    """``G f``, ``G<=b f``, or ``G[a,b] f`` (invariance over a window)."""

    operand: StateFormula
    bound: Optional[int] = None
    lower: int = 0

    def __str__(self) -> str:
        return f"G{_window_suffix(self.lower, self.bound)} {self.operand}"


# ----------------------------------------------------------------------
# Reward path formulas
# ----------------------------------------------------------------------
class RewardPath:
    """Base class for the operand of ``R bowtie [..]``."""


@dataclass(frozen=True)
class Instantaneous(RewardPath):
    """``I=t``: expected state reward at exactly step ``t`` (paper's P2/C1)."""

    time: int

    def __str__(self) -> str:
        return f"I={self.time}"


@dataclass(frozen=True)
class Cumulative(RewardPath):
    """``C<=t``: expected reward accumulated over the first ``t`` steps."""

    time: int

    def __str__(self) -> str:
        return f"C<={self.time}"


@dataclass(frozen=True)
class ReachReward(RewardPath):
    """``F f``: expected reward accumulated until first reaching ``f``."""

    target: StateFormula

    def __str__(self) -> str:
        return f"F {self.target}"


@dataclass(frozen=True)
class LongRunReward(RewardPath):
    """``S``: long-run average reward per step."""

    def __str__(self) -> str:
        return "S"


# ----------------------------------------------------------------------
# Quantified operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbQuery(StateFormula):
    """``P bowtie [ path ]``."""

    path: PathFormula
    bound: Bound = QUERY

    def __str__(self) -> str:
        return f"P{self.bound} [ {self.path} ]"


@dataclass(frozen=True)
class SteadyQuery(StateFormula):
    """``S bowtie [ f ]``: long-run probability of being in ``f`` states."""

    formula: StateFormula
    bound: Bound = QUERY

    def __str__(self) -> str:
        return f"S{self.bound} [ {self.formula} ]"


@dataclass(frozen=True)
class RewardQuery(StateFormula):
    """``R{"name"} bowtie [ rpath ]``; ``reward=None`` uses the chain's only reward."""

    path: RewardPath
    bound: Bound = QUERY
    reward: Optional[str] = None

    def __str__(self) -> str:
        name = f'{{"{self.reward}"}}' if self.reward else ""
        return f"R{name}{self.bound} [ {self.path} ]"


Formula = Union[StateFormula]
